// Package loadgen is the closed-loop load injector of section V-C1: a
// set of virtual HTTP clients, each repeatedly connecting to the server
// and requesting a fixed number of files per connection, with a master
// that starts the clients together and collects their results. The
// simulator has its own client models (swsmodel/sfsmodel); this one
// drives the real servers (cmd/swsload).
package loadgen

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// HTTPConfig parameterizes an injection run.
type HTTPConfig struct {
	// Addr is the server's host:port.
	Addr string
	// Clients is the number of concurrent virtual clients.
	Clients int
	// RequestsPerConn is how many files each client requests before
	// reconnecting (the paper uses 150).
	RequestsPerConn int
	// Paths are requested round-robin (default "/").
	Paths []string
	// Duration bounds the run.
	Duration time.Duration
	// DialTimeout bounds one connection attempt.
	DialTimeout time.Duration
	// ThinkTime pauses each virtual client between requests, modeling
	// the idle periods of a real user session (and exercising server
	// idle-timeout paths). Zero keeps the classic closed loop that
	// hammers as fast as responses return.
	ThinkTime time.Duration
	// ThinkJitter adds a uniform random [0, ThinkJitter) on top of each
	// pause, de-synchronizing the clients so think times don't beat in
	// lockstep.
	ThinkJitter time.Duration
	// IdleConns opens this many extra connections that send nothing for
	// the whole run — the C10K shape, where the vast majority of
	// connections are idle at any instant and only readiness-driven
	// backends stay cheap. Idle holders count toward Connects but issue
	// no requests; a server that reaps or refuses them does not fail
	// the run.
	IdleConns int
	// Burst switches each client into open-loop burst mode: instead of
	// the classic one-request-await-response closed loop, the client
	// writes Burst pipelined requests in one gulp (offered load is not
	// gated on the server keeping up — the overload shape), then reads
	// the responses, pauses BurstPause, and repeats. This is how the
	// runtime's queue bounds are exercised from the CLI: a burst of B
	// requests from C clients lands B*C events on the server at once,
	// regardless of service rate. 0 keeps the closed loop.
	Burst int
	// BurstPause is the pause between one client's bursts (0 =
	// back-to-back bursts).
	BurstPause time.Duration
	// TrackLatency records per-request latencies and reports the P50
	// and P99 percentiles in the Result — the measurement the scenario
	// harness's SLO blocks gate on. In burst mode a response's latency
	// is measured from its burst's write, the offered-load view. Off
	// by default: the sample buffer costs memory at injection rates.
	TrackLatency bool
}

func (c *HTTPConfig) defaults() error {
	if c.Addr == "" {
		return errors.New("loadgen: no server address")
	}
	if c.Clients <= 0 {
		c.Clients = 1
	}
	if c.RequestsPerConn <= 0 {
		c.RequestsPerConn = 150
	}
	if len(c.Paths) == 0 {
		c.Paths = []string{"/"}
	}
	if c.Duration <= 0 {
		c.Duration = 10 * time.Second
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 5 * time.Second
	}
	if c.ThinkTime < 0 || c.ThinkJitter < 0 {
		return errors.New("loadgen: negative think time")
	}
	if c.IdleConns < 0 {
		return errors.New("loadgen: negative idle connection count")
	}
	if c.Burst < 0 || c.BurstPause < 0 {
		return errors.New("loadgen: negative burst parameters")
	}
	return nil
}

// Result aggregates an injection run.
type Result struct {
	Requests    int64
	Errors      int64
	Connects    int64
	BytesRead   int64
	Elapsed     time.Duration
	KRequestsPS float64
	// LatencyP50/LatencyP99 are request-latency percentiles, populated
	// only when HTTPConfig.TrackLatency is set (zero otherwise).
	LatencyP50 time.Duration
	LatencyP99 time.Duration
}

// latencySampleCap bounds the per-run latency buffer: at typical
// injection rates a measurement phase stays well under it, and a
// pathological run degrades to a prefix sample instead of unbounded
// memory.
const latencySampleCap = 1 << 20

// latencyRecorder accumulates request latencies across clients.
type latencyRecorder struct {
	mu      sync.Mutex
	samples []time.Duration
}

func (l *latencyRecorder) add(batch []time.Duration) {
	if l == nil || len(batch) == 0 {
		return
	}
	l.mu.Lock()
	if room := latencySampleCap - len(l.samples); room > 0 {
		if len(batch) > room {
			batch = batch[:room]
		}
		l.samples = append(l.samples, batch...)
	}
	l.mu.Unlock()
}

// percentile returns the pth percentile (0 < p <= 100) of the sorted
// samples.
func (l *latencyRecorder) percentile(p float64) time.Duration {
	if len(l.samples) == 0 {
		return 0
	}
	idx := int(float64(len(l.samples))*p/100) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(l.samples) {
		idx = len(l.samples) - 1
	}
	return l.samples[idx]
}

// RunHTTP runs the closed-loop injection and aggregates the results.
func RunHTTP(ctx context.Context, cfg HTTPConfig) (Result, error) {
	if err := cfg.defaults(); err != nil {
		return Result{}, err
	}
	runCtx, cancel := context.WithTimeout(ctx, cfg.Duration)
	defer cancel()
	// The context's Err() flips only when its timer goroutine fires, but
	// dials and reads fail against the deadline *timestamp*; in between,
	// a closed-loop client would spin counting spurious errors. Gate the
	// loop and the error accounting on the wall clock as well.
	deadline, _ := runCtx.Deadline()

	var (
		requests, errCount, connects, bytesRead atomic.Int64
		wg                                      sync.WaitGroup
		start                                   = make(chan struct{})
		lat                                     *latencyRecorder
	)
	if cfg.TrackLatency {
		lat = &latencyRecorder{}
	}
	for i := 0; i < cfg.Clients; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			<-start // master-synchronized start
			for runCtx.Err() == nil && time.Now().Before(deadline) {
				n, b, err := runConnection(runCtx, cfg, id, lat)
				requests.Add(n)
				bytesRead.Add(b)
				connects.Add(1)
				if err != nil && runCtx.Err() == nil && time.Now().Before(deadline) {
					errCount.Add(1)
				}
			}
		}(i)
	}
	// Idle holders: one goroutine dials the silent connections in
	// sequence (local dials are cheap; the point is the held-open
	// population, not dial concurrency) and keeps them open until the
	// deadline.
	if cfg.IdleConns > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			holdIdleConns(runCtx, cfg, &connects)
		}()
	}
	began := time.Now()
	close(start)
	wg.Wait()
	elapsed := time.Since(began)

	res := Result{
		Requests:  requests.Load(),
		Errors:    errCount.Load(),
		Connects:  connects.Load(),
		BytesRead: bytesRead.Load(),
		Elapsed:   elapsed,
	}
	if elapsed > 0 {
		res.KRequestsPS = float64(res.Requests) / elapsed.Seconds() / 1000
	}
	if lat != nil {
		sort.Slice(lat.samples, func(i, j int) bool { return lat.samples[i] < lat.samples[j] })
		res.LatencyP50 = lat.percentile(50)
		res.LatencyP99 = lat.percentile(99)
	}
	return res, nil
}

// holdIdleConns opens cfg.IdleConns silent connections and keeps them
// open until the context ends. Dial failures (e.g. the server's
// MaxClients refusing us) are tolerated: the point is offered idle
// load, not a guarantee.
func holdIdleConns(ctx context.Context, cfg HTTPConfig, connects *atomic.Int64) {
	d := net.Dialer{Timeout: cfg.DialTimeout}
	conns := make([]net.Conn, 0, cfg.IdleConns)
	defer func() {
		for _, c := range conns {
			_ = c.Close()
		}
	}()
	for i := 0; i < cfg.IdleConns && ctx.Err() == nil; i++ {
		conn, err := d.DialContext(ctx, "tcp", cfg.Addr)
		if err != nil {
			continue
		}
		if tc, ok := conn.(*net.TCPConn); ok {
			_ = tc.SetLinger(0) // see runConnection: avoid TIME_WAIT pileup
		}
		conns = append(conns, conn)
		connects.Add(1)
	}
	<-ctx.Done()
}

// runConnection performs up to RequestsPerConn requests on one
// connection, returning the number completed and bytes read.
func runConnection(ctx context.Context, cfg HTTPConfig, id int, lat *latencyRecorder) (int64, int64, error) {
	d := net.Dialer{Timeout: cfg.DialTimeout}
	conn, err := d.DialContext(ctx, "tcp", cfg.Addr)
	if err != nil {
		return 0, 0, err
	}
	defer conn.Close()
	if tc, ok := conn.(*net.TCPConn); ok {
		// The client side initiates every close, so each reconnect cycle
		// would leave a TIME_WAIT socket; at injection rates that
		// exhausts the ephemeral port range within seconds and every
		// later dial fails. Linger 0 closes with RST instead.
		_ = tc.SetLinger(0)
	}
	if deadline, ok := ctx.Deadline(); ok {
		_ = conn.SetDeadline(deadline)
	}
	br := bufio.NewReader(conn)
	if cfg.Burst > 0 {
		return runBurstConnection(ctx, cfg, conn, br, id, lat)
	}
	var done, read int64
	var samples []time.Duration
	if lat != nil {
		defer func() { lat.add(samples) }()
	}
	for i := 0; i < cfg.RequestsPerConn; i++ {
		if ctx.Err() != nil {
			return done, read, nil
		}
		path := cfg.Paths[(id+i)%len(cfg.Paths)]
		sent := time.Now()
		if _, err := fmt.Fprintf(conn, "GET %s HTTP/1.1\r\nHost: load\r\n\r\n", path); err != nil {
			return done, read, err
		}
		n, err := readResponse(br)
		read += n
		if err != nil {
			return done, read, err
		}
		done++
		if lat != nil {
			samples = append(samples, time.Since(sent))
		}
		if pause := thinkPause(cfg); pause > 0 && i+1 < cfg.RequestsPerConn {
			// Think on the open connection (the idle-timeout shape),
			// but never sleep past the run deadline.
			if deadline, ok := ctx.Deadline(); ok {
				if remain := time.Until(deadline); pause >= remain {
					time.Sleep(max(remain, 0))
					return done, read, nil
				}
			}
			time.Sleep(pause)
		}
	}
	return done, read, nil
}

// runBurstConnection is the open-loop leg of runConnection: write a
// whole burst of pipelined requests at once (offered load decoupled
// from service rate), then collect the responses, pause, repeat until
// RequestsPerConn requests have been issued. A server shedding load
// (503) still answers each request, so the response loop stays in
// lockstep with the burst size.
func runBurstConnection(ctx context.Context, cfg HTTPConfig, conn net.Conn, br *bufio.Reader, id int, lat *latencyRecorder) (int64, int64, error) {
	var done, read int64
	issued := 0
	var req bytes.Buffer
	var samples []time.Duration
	if lat != nil {
		defer func() { lat.add(samples) }()
	}
	for issued < cfg.RequestsPerConn {
		if ctx.Err() != nil {
			return done, read, nil
		}
		burst := cfg.Burst
		if rem := cfg.RequestsPerConn - issued; burst > rem {
			burst = rem
		}
		req.Reset()
		for i := 0; i < burst; i++ {
			path := cfg.Paths[(id+issued+i)%len(cfg.Paths)]
			fmt.Fprintf(&req, "GET %s HTTP/1.1\r\nHost: load\r\n\r\n", path)
		}
		sent := time.Now()
		if _, err := conn.Write(req.Bytes()); err != nil {
			return done, read, err
		}
		issued += burst
		for i := 0; i < burst; i++ {
			n, err := readResponse(br)
			read += n
			if err != nil {
				return done, read, err
			}
			done++
			if lat != nil {
				samples = append(samples, time.Since(sent))
			}
		}
		if cfg.BurstPause > 0 && issued < cfg.RequestsPerConn {
			if deadline, ok := ctx.Deadline(); ok {
				if remain := time.Until(deadline); cfg.BurstPause >= remain {
					time.Sleep(max(remain, 0))
					return done, read, nil
				}
			}
			time.Sleep(cfg.BurstPause)
		}
	}
	return done, read, nil
}

// thinkPause draws one between-requests pause from the configured think
// time and jitter.
func thinkPause(cfg HTTPConfig) time.Duration {
	pause := cfg.ThinkTime
	if cfg.ThinkJitter > 0 {
		pause += time.Duration(rand.Int63n(int64(cfg.ThinkJitter)))
	}
	return pause
}

// readResponse consumes one HTTP response, returning its size.
func readResponse(br *bufio.Reader) (int64, error) {
	var total int64
	length := -1
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			return total, err
		}
		total += int64(len(line))
		trimmed := strings.TrimSpace(line)
		if trimmed == "" {
			break
		}
		if v, ok := strings.CutPrefix(strings.ToLower(trimmed), "content-length:"); ok {
			if _, err := fmt.Sscanf(strings.TrimSpace(v), "%d", &length); err != nil {
				return total, fmt.Errorf("loadgen: bad content length %q", v)
			}
		}
	}
	if length < 0 {
		return total, errors.New("loadgen: response without content length")
	}
	n, err := io.CopyN(io.Discard, br, int64(length))
	return total + n, err
}
