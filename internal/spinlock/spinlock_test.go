package spinlock

import (
	"runtime"
	"sync"
	"testing"
)

func TestMutualExclusion(t *testing.T) {
	var (
		l       Lock
		counter int
		wg      sync.WaitGroup
	)
	const goroutines, iters = 8, 2000
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				l.Lock()
				counter++
				l.Unlock()
			}
		}()
	}
	wg.Wait()
	if counter != goroutines*iters {
		t.Fatalf("counter = %d, want %d", counter, goroutines*iters)
	}
}

func TestTryLock(t *testing.T) {
	var l Lock
	if !l.TryLock() {
		t.Fatal("TryLock on a free lock must succeed")
	}
	if l.TryLock() {
		t.Fatal("TryLock on a held lock must fail")
	}
	l.Unlock()
	if !l.TryLock() {
		t.Fatal("TryLock after Unlock must succeed")
	}
	l.Unlock()
}

// TestSingleProcLiveness guards the GOMAXPROCS=1 case: a contended
// spinlock must still make progress because waiters yield.
func TestSingleProcLiveness(t *testing.T) {
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)
	var l Lock
	done := make(chan struct{})
	l.Lock()
	go func() {
		l.Lock() // must block, then acquire after the main goroutine unlocks
		l.Unlock()
		close(done)
	}()
	runtime.Gosched()
	l.Unlock()
	<-done
}
