// Package spinlock provides the per-core queue lock of the real
// runtime: a padded test-and-test-and-set spinlock. The paper's runtime
// spins without yielding ("there is no interest in yielding cores, only
// one thread per core, if energy is not a concern"); on a Go runtime we
// must eventually yield to the scheduler — a worker goroutine may share
// an OS thread with the lock holder, in particular when GOMAXPROCS is
// smaller than the worker count — so the spin is bounded.
package spinlock

import (
	"runtime"
	"sync/atomic"
)

// spinsBeforeYield bounds the busy-wait between scheduler yields.
const spinsBeforeYield = 128

// Lock is a TTAS spinlock padded to its own cache line so that locks of
// neighboring cores do not false-share.
type Lock struct {
	state atomic.Int32
	_     [60]byte // pad to a 64-byte line
}

// Lock acquires l, spinning with bounded busy-wait.
func (l *Lock) Lock() {
	for {
		if l.state.CompareAndSwap(0, 1) {
			return
		}
		spins := 0
		for l.state.Load() != 0 {
			spins++
			if spins >= spinsBeforeYield {
				runtime.Gosched()
				spins = 0
			}
		}
	}
}

// TryLock acquires l if it is free.
func (l *Lock) TryLock() bool {
	return l.state.CompareAndSwap(0, 1)
}

// Unlock releases l. It must be held.
func (l *Lock) Unlock() {
	l.state.Store(0)
}
