package mely

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/melyruntime/mely/internal/equeue"
)

func newRuntime(t *testing.T, cfg Config) *Runtime {
	t.Helper()
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func startRuntime(t *testing.T, cfg Config) *Runtime {
	t.Helper()
	r := newRuntime(t, cfg)
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Stop)
	return r
}

// colorsOn returns n distinct colors whose hash home is the given core
// (the 64-bit mix hash made "multiples of Cores" placement tricks
// meaningless, so imbalance-sensitive tests pick colors by search).
func colorsOn(r *Runtime, core, n int) []Color {
	out := make([]Color, 0, n)
	for c := uint64(1); len(out) < n; c++ {
		if r.table.Hash(equeue.Color(c)) == core {
			out = append(out, Color(c))
		}
	}
	return out
}

func drain(t *testing.T, r *Runtime) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := r.Drain(ctx); err != nil {
		t.Fatalf("drain: %v (pending=%d)", err, r.pending.Load())
	}
}

func TestExecutesPostedEvents(t *testing.T) {
	for _, pol := range []Policy{PolicyMelyWS, PolicyMely, PolicyLibasync, PolicyLibasyncWS, PolicyMelyBaseWS} {
		t.Run(pol.String(), func(t *testing.T) {
			r := startRuntime(t, Config{Cores: 4, Policy: pol})
			var count atomic.Int64
			h := r.Register("count", func(ctx *Ctx) { count.Add(1) })
			for i := 0; i < 500; i++ {
				if err := r.Post(h, Color(i%100+1), i); err != nil {
					t.Fatal(err)
				}
			}
			drain(t, r)
			if got := count.Load(); got != 500 {
				t.Fatalf("executed %d events, want 500", got)
			}
		})
	}
}

func TestColorSerialization(t *testing.T) {
	// The core guarantee: same-color handlers never run concurrently,
	// so unsynchronized per-color state is safe. Run with -race.
	r := startRuntime(t, Config{Cores: 4, Policy: PolicyMelyWS})
	const colors, events = 16, 200
	counters := make([]int, colors) // no locks: colors serialize
	var inFlight [colors]atomic.Int32
	h := r.Register("inc", func(ctx *Ctx) {
		idx := ctx.Data().(int)
		if inFlight[idx].Add(1) != 1 {
			t.Error("two events of one color ran concurrently")
		}
		counters[idx]++
		inFlight[idx].Add(-1)
	})
	for i := 0; i < colors*events; i++ {
		idx := i % colors
		if err := r.Post(h, Color(idx+1), idx); err != nil {
			t.Fatal(err)
		}
	}
	drain(t, r)
	for i, c := range counters {
		if c != events {
			t.Fatalf("color %d executed %d events, want %d", i, c, events)
		}
	}
}

func TestHandlerChaining(t *testing.T) {
	r := startRuntime(t, Config{Cores: 2})
	var sum atomic.Int64
	var h Handler
	h = r.Register("chain", func(ctx *Ctx) {
		n := ctx.Data().(int)
		sum.Add(int64(n))
		if n > 0 {
			if err := ctx.Post(h, ctx.Color(), n-1); err != nil {
				t.Error(err)
			}
		}
	})
	if err := r.Post(h, 7, 10); err != nil {
		t.Fatal(err)
	}
	drain(t, r)
	if got := sum.Load(); got != 55 {
		t.Fatalf("chain sum = %d, want 55", got)
	}
}

func TestWorkstealingSpreadsLoad(t *testing.T) {
	r := startRuntime(t, Config{Cores: 4, Policy: PolicyMelyWS})
	var wg sync.WaitGroup
	wg.Add(400)
	h := r.Register("spin", func(ctx *Ctx) {
		deadline := time.Now().Add(200 * time.Microsecond)
		for time.Now().Before(deadline) {
		}
		wg.Done()
	}, WithCostEstimate(200*time.Microsecond))
	// All colors hash to core 0: a fully imbalanced load.
	for i, col := range colorsOn(r, 0, 400) {
		if err := r.Post(h, col, i); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	drain(t, r)
	st := r.Stats()
	if st.Total().Steals == 0 {
		t.Fatal("no steals despite a fully imbalanced load")
	}
	helpers := 0
	for i := 1; i < len(st.Cores); i++ {
		if st.Cores[i].Events > 0 {
			helpers++
		}
	}
	if helpers == 0 {
		t.Fatal("no other core executed events")
	}
}

func TestBatchStealAccounting(t *testing.T) {
	// Same imbalanced shape as above, under the default (batched) steal
	// protocol: the stats must tie out — every steal lands in exactly
	// one histogram bucket, colors migrated can only exceed steals, and
	// the serial-execution guarantee still holds per color.
	r := startRuntime(t, Config{Cores: 4})
	var wg sync.WaitGroup
	wg.Add(400)
	h := r.Register("spin", func(ctx *Ctx) {
		deadline := time.Now().Add(100 * time.Microsecond)
		for time.Now().Before(deadline) {
		}
		wg.Done()
	}, WithCostEstimate(100*time.Microsecond))
	for i, col := range colorsOn(r, 0, 400) {
		if err := r.Post(h, col, i); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	drain(t, r)
	st := r.Stats().Total()
	if st.Steals == 0 {
		t.Fatal("no steals despite a fully imbalanced load")
	}
	if st.StolenColors < st.Steals {
		t.Fatalf("stolen colors %d < steals %d", st.StolenColors, st.Steals)
	}
	var hist int64
	for _, n := range st.StealBatchHist {
		hist += n
	}
	if hist != st.Steals {
		t.Fatalf("batch histogram sums to %d, want %d steals", hist, st.Steals)
	}
	if got := st.MeanStealBatch(); got < 1 {
		t.Fatalf("mean batch %f < 1", got)
	}
}

func TestNoStealingWhenDisabled(t *testing.T) {
	r := startRuntime(t, Config{Cores: 4, Policy: PolicyMely})
	var wg sync.WaitGroup
	wg.Add(100)
	h := r.Register("work", func(ctx *Ctx) { wg.Done() })
	for i, col := range colorsOn(r, 0, 100) {
		if err := r.Post(h, col, i); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	st := r.Stats()
	if st.Total().Steals != 0 {
		t.Fatal("PolicyMely must not steal")
	}
	for i := 1; i < len(st.Cores); i++ {
		if st.Cores[i].Events != 0 {
			t.Fatalf("core %d executed events without stealing", i)
		}
	}
}

func TestPenaltyAnnotationFlows(t *testing.T) {
	r := newRuntime(t, Config{Cores: 2, Policy: PolicyMelyWS})
	h := r.Register("heavy", func(ctx *Ctx) {}, WithPenalty(1000))
	if err := r.Post(h, 3, nil); err != nil {
		t.Fatal(err)
	}
	// The event sits queued (not started): its penalty must be applied.
	c := r.cores[r.table.Owner(3)]
	c.lock.Lock()
	cq := r.table.Queue(3)
	if cq == nil || cq.Len() != 1 {
		c.lock.Unlock()
		t.Fatal("event not queued where expected")
	}
	if cq.CumCost() >= 1000 {
		c.lock.Unlock()
		t.Fatalf("penalty not applied: cumCost=%d", cq.CumCost())
	}
	c.lock.Unlock()
}

func TestCostAnnotationPinsProfile(t *testing.T) {
	r := newRuntime(t, Config{Cores: 1})
	h := r.Register("fixed", func(ctx *Ctx) {}, WithCostEstimate(5*time.Millisecond))
	if got := r.profiles.Handler(int(h.id) - 1).Estimate(); got != (5 * time.Millisecond).Nanoseconds() {
		t.Fatalf("annotated estimate = %d", got)
	}
}

func TestProfileLearnsOnline(t *testing.T) {
	r := startRuntime(t, Config{Cores: 1})
	h := r.Register("sleepy", func(ctx *Ctx) { time.Sleep(time.Millisecond) })
	for i := 0; i < 10; i++ {
		if err := r.Post(h, 5, nil); err != nil {
			t.Fatal(err)
		}
	}
	drain(t, r)
	if est := r.profiles.Handler(int(h.id) - 1).Estimate(); est < (100 * time.Microsecond).Nanoseconds() {
		t.Fatalf("online estimate %dns did not learn a ~1ms handler", est)
	}
}

func TestPostErrors(t *testing.T) {
	r := newRuntime(t, Config{Cores: 1})
	if err := r.Post(Handler{id: 99}, 1, nil); err == nil {
		t.Fatal("unknown handler must fail")
	}
	if err := r.Post(Handler{}, 1, nil); err == nil {
		t.Fatal("zero-value handler must fail")
	}
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	r.Stop()
	h := r.Register("late", func(ctx *Ctx) {})
	if err := r.Post(h, 1, nil); err == nil {
		t.Fatal("post after Stop must fail")
	}
}

func TestLifecycle(t *testing.T) {
	r := newRuntime(t, Config{Cores: 2})
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	if err := r.Start(); err == nil {
		t.Fatal("double Start must fail")
	}
	r.Stop()
	r.Stop() // idempotent
	if err := r.Start(); err == nil {
		t.Fatal("Start after Stop must fail")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Cores: -1}); err == nil {
		t.Fatal("negative cores must fail")
	}
	if _, err := New(Config{Policy: Policy(99)}); err == nil {
		t.Fatal("invalid policy must fail")
	}
	if _, err := New(Config{BatchThreshold: -5}); err == nil {
		t.Fatal("negative batch threshold must fail")
	}
}

func TestConcurrentPosters(t *testing.T) {
	// Many goroutines posting to overlapping colors while workers
	// steal: exercises the ownership retry and merge paths under -race.
	r := startRuntime(t, Config{Cores: 4, Policy: PolicyMelyWS})
	var count atomic.Int64
	h := r.Register("n", func(ctx *Ctx) {
		count.Add(1)
		time.Sleep(10 * time.Microsecond)
	})
	var wg sync.WaitGroup
	const posters, perPoster = 8, 300
	for p := 0; p < posters; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perPoster; i++ {
				if err := r.Post(h, Color(i%50+1), nil); err != nil {
					t.Error(err)
					return
				}
			}
		}(p)
	}
	wg.Wait()
	drain(t, r)
	if got := count.Load(); got != posters*perPoster {
		t.Fatalf("executed %d, want %d", got, posters*perPoster)
	}
}

func TestDrainTimeout(t *testing.T) {
	r := newRuntime(t, Config{Cores: 1})
	h := r.Register("never", func(ctx *Ctx) {})
	if err := r.Post(h, 1, nil); err != nil {
		t.Fatal(err)
	}
	// Runtime not started: the event can never complete.
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := r.Drain(ctx); err == nil {
		t.Fatal("drain must time out when workers are not running")
	}
}

func TestStatsSnapshot(t *testing.T) {
	r := startRuntime(t, Config{Cores: 2, Policy: PolicyMelyWS})
	h := r.Register("w", func(ctx *Ctx) {})
	for i := 0; i < 50; i++ {
		if err := r.Post(h, Color(i+1), nil); err != nil {
			t.Fatal(err)
		}
	}
	drain(t, r)
	st := r.Stats()
	tot := st.Total()
	if tot.Events != 50 {
		t.Fatalf("stats events = %d, want 50", tot.Events)
	}
	if tot.ExecTime <= 0 {
		t.Fatal("exec time must accumulate")
	}
	if st.StealCostEstimate <= 0 {
		t.Fatal("steal cost estimate must be positive")
	}
	if st.Pending != 0 {
		t.Fatalf("pending = %d after drain", st.Pending)
	}
}

func TestStolenEventsMarked(t *testing.T) {
	r := startRuntime(t, Config{Cores: 4, Policy: PolicyMelyWS})
	var sawStolen atomic.Bool
	var wg sync.WaitGroup
	wg.Add(200)
	h := r.Register("busy", func(ctx *Ctx) {
		if ctx.Stolen() {
			sawStolen.Store(true)
		}
		deadline := time.Now().Add(100 * time.Microsecond)
		for time.Now().Before(deadline) {
		}
		wg.Done()
	}, WithCostEstimate(100*time.Microsecond))
	for _, col := range colorsOn(r, 0, 200) {
		if err := r.Post(h, col, nil); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	drain(t, r)
	if r.Stats().Total().Steals > 0 && !sawStolen.Load() {
		t.Fatal("steals happened but no handler observed Stolen()")
	}
}

func TestHandlerPanicContained(t *testing.T) {
	r := startRuntime(t, Config{Cores: 2})
	var after atomic.Int64
	boom := r.Register("boom", func(ctx *Ctx) { panic("handler bug") })
	ok := r.Register("ok", func(ctx *Ctx) { after.Add(1) })
	if err := r.Post(boom, 3, nil); err != nil {
		t.Fatal(err)
	}
	if err := r.Post(ok, 3, nil); err != nil {
		t.Fatal(err)
	}
	drain(t, r)
	if after.Load() != 1 {
		t.Fatal("worker did not survive the panic")
	}
	if got := r.Stats().Total().Panics; got != 1 {
		t.Fatalf("panics = %d, want 1", got)
	}
}

func TestOwnershipLeaseRevertsOnDrain(t *testing.T) {
	// White-box: after a color drains on a non-home core, the next post
	// must land back on its hash core.
	r := newRuntime(t, Config{Cores: 4, Policy: PolicyMelyWS})
	h := r.Register("w", func(ctx *Ctx) {})
	col := colorsOn(r, 2, 1)[0] // hash home: core 2
	// Simulate a past steal: core 1 owns the (drained) color.
	r.table.SetOwner(equeue.Color(col), 1)
	if err := r.Post(h, col, nil); err != nil {
		t.Fatal(err)
	}
	if got := r.table.Owner(equeue.Color(col)); got != 2 {
		t.Fatalf("drained color owned by core %d after post, want hash home 2", got)
	}
	c := r.cores[2]
	c.lock.Lock()
	qlen := c.mely.Len()
	c.lock.Unlock()
	if qlen != 1 {
		t.Fatalf("event not queued on the hash core (len=%d)", qlen)
	}
}

func TestOwnershipLeaseHeldWhileLive(t *testing.T) {
	// A color with pending events must NOT re-home.
	r := newRuntime(t, Config{Cores: 4, Policy: PolicyMelyWS})
	h := r.Register("w", func(ctx *Ctx) {})
	col := colorsOn(r, 2, 1)[0] // hash home: core 2, held live on core 1
	// Place a live event on core 1 the way a steal would: queue plus
	// table entry, under the core's lock.
	c1 := r.cores[1]
	c1.lock.Lock()
	cq := c1.mely.NewColorQueue(equeue.Color(col))
	c1.mely.Push(cq, &equeue.Event{Color: equeue.Color(col), Cost: 1, Penalty: 1})
	r.table.SetQueue(equeue.Color(col), cq)
	r.table.SetOwner(equeue.Color(col), 1)
	c1.lock.Unlock()

	if err := r.Post(h, col, nil); err != nil {
		t.Fatal(err)
	}
	if got := r.table.Owner(equeue.Color(col)); got != 1 {
		t.Fatalf("live color re-homed to core %d, want 1", got)
	}
	c1.lock.Lock()
	qlen := c1.mely.Len()
	c1.lock.Unlock()
	if qlen != 2 {
		t.Fatalf("post did not follow the live lease (len=%d)", qlen)
	}
}

func TestLeaseStealRaceStress(t *testing.T) {
	// Regression for the in-transit window: posters race steals on a
	// handful of colors that repeatedly drain (lease reverts), while
	// workers steal them back and forth. Every event must execute
	// exactly once, with colors never split across cores (-race covers
	// the memory side; the counter covers conservation).
	r := startRuntime(t, Config{Cores: 4, Policy: PolicyMelyWS, ParkTimeout: 50 * time.Microsecond})
	var count atomic.Int64
	h := r.Register("burst", func(ctx *Ctx) {
		count.Add(1)
		deadline := time.Now().Add(20 * time.Microsecond)
		for time.Now().Before(deadline) {
		}
	}, WithCostEstimate(20*time.Microsecond))

	var wg sync.WaitGroup
	hot := colorsOn(r, 0, 3)
	const posters, bursts, perBurst = 4, 60, 25
	for p := 0; p < posters; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for b := 0; b < bursts; b++ {
				for i := 0; i < perBurst; i++ {
					// Few colors, all hashing to core 0, so they are
					// constantly stolen away and re-homed on drain.
					if err := r.Post(h, hot[i%3], nil); err != nil {
						t.Error(err)
						return
					}
				}
				// Let the burst drain so leases revert.
				time.Sleep(time.Duration(200+p*37) * time.Microsecond)
			}
		}(p)
	}
	wg.Wait()
	drain(t, r)
	if got := count.Load(); got != posters*bursts*perBurst {
		t.Fatalf("executed %d, want %d (events lost or duplicated)", got, posters*bursts*perBurst)
	}
}
