package mely

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/melyruntime/mely/internal/affinity"
	"github.com/melyruntime/mely/internal/equeue"
	"github.com/melyruntime/mely/internal/obs"
	"github.com/melyruntime/mely/internal/policy"
	"github.com/melyruntime/mely/internal/profile"
	"github.com/melyruntime/mely/internal/spinlock"
	"github.com/melyruntime/mely/internal/timerwheel"
	"github.com/melyruntime/mely/internal/topology"
)

// ErrStopped is returned by Post and PostBatch once the runtime has
// stopped (Stop, Close, or the end of Run). Producers race shutdown by
// design — drain loops and pumps test for it with errors.Is.
var ErrStopped = errors.New("mely: runtime stopped")

// Handler identifies a registered event handler. The zero value is
// invalid (Post rejects it), so optional handler fields can be left
// unset.
type Handler struct{ id int32 } // id is the handler index + 1; 0 = invalid

// HandlerFunc is an event handler. Handlers must not block: network and
// disk waits belong in pumps (see internal/netpoll) that post events on
// readiness. A handler runs with its event's color held — no two events
// of one color ever run concurrently.
type HandlerFunc func(ctx *Ctx)

// HandlerOption annotates a handler at registration.
type HandlerOption interface{ apply(*handlerEntry) }

type penaltyOption int32

func (p penaltyOption) apply(h *handlerEntry) { h.penalty = int32(p) }

// WithPenalty sets the handler's workstealing penalty (section III-C of
// the paper): thieves perceive its events as penalty-times cheaper, so
// handlers touching large, long-lived data sets stay near their data.
func WithPenalty(penalty int) HandlerOption {
	if penalty < 1 {
		penalty = 1
	}
	return penaltyOption(penalty)
}

type costOption time.Duration

func (c costOption) apply(h *handlerEntry) { h.annotated = time.Duration(c) }

// WithCostEstimate pins the handler's execution-time annotation (the
// paper's profiling-then-annotation workflow). Without it the runtime
// learns the estimate online.
func WithCostEstimate(d time.Duration) HandlerOption { return costOption(d) }

type handlerEntry struct {
	name      string
	fn        HandlerFunc
	penalty   int32
	annotated time.Duration
}

// rstats are per-core counters, atomics so Stats can snapshot while
// workers run.
type rstats struct {
	events           atomic.Int64
	execNanos        atomic.Int64
	steals           atomic.Int64
	remoteSteals     atomic.Int64
	stealAttempts    atomic.Int64
	failedSteals     atomic.Int64
	stealNanos       atomic.Int64
	stolenEvents     atomic.Int64
	stolenExecNanos  atomic.Int64
	stolenColors     atomic.Int64
	batchHist        [StealBatchBuckets]atomic.Int64
	backoffParks     atomic.Int64
	parks            atomic.Int64
	postedHere       atomic.Int64
	batchedEvents    atomic.Int64
	colorQueueChurns atomic.Int64
	panics           atomic.Int64
	stalls           atomic.Int64
	timersFired      atomic.Int64
	timerLagHist     [TimerLagBuckets]atomic.Int64
	// Sampled latency histograms (Config.ObsSampleRate): queue delay
	// (post→execute) and handler execution time.
	qdelayHist   obs.Hist
	execTimeHist obs.Hist
}

type rcore struct {
	id   int
	lock spinlock.Lock

	// Exactly one of list/mely is non-nil; both are guarded by lock.
	list *equeue.ListQueue
	mely *equeue.CoreQueue

	// running is the color being executed (guarded by lock; it stays
	// set between events and is cleared when the worker demonstrably
	// stops executing — stealing or parking — mirroring the simulator).
	running    equeue.Color
	hasRunning bool

	// qlen/stealLen mirror queue sizes for unlocked victim screening.
	qlen     atomic.Int32
	stealLen atomic.Int32
	// diskLen mirrors the summed spill backlog of the colors linked on
	// this core, so thieves rank victims by effective depth (memory
	// head plus disk tail) without locking. Stays 0 while spill is off.
	diskLen atomic.Int32

	wake chan struct{}

	// wheel is the core's timing wheel: timers for colors owned here are
	// armed here, harvested by this worker, and migrate with their color.
	wheel *timerwheel.Wheel
	// parkTimer is the reusable park sleep timer (one per core instead
	// of a time.NewTimer allocation per park).
	parkTimer *time.Timer

	victimBuf []int
	lenBuf    []int
	// Batch-steal scratch, reused across attempts (worker-owned).
	stealBuf []*equeue.ColorQueue
	colorBuf []equeue.Color
	setBuf   []equeue.EventSet
	// Timer scratch (worker-owned): harvest and steal-migration buffers.
	timerBuf []*timerwheel.Entry
	entryBuf []*timerwheel.Entry
	// ctx is the worker's reusable handler context. Handlers receive
	// *Ctx, which escapes, so a per-event Ctx literal was the hot
	// path's only heap allocation; one event executes at a time per
	// worker, and a Ctx was never valid past the handler's return (its
	// event is zeroed and pooled), so reuse is invisible to handlers.
	ctx   Ctx
	stats rstats

	// ring is the core's flight-recorder buffer (nil when
	// Config.TraceRing is negative); colorDelays attributes sampled
	// queue delay to the core's hottest colors.
	ring        *obs.Ring
	colorDelays colorDelayTable

	// Stall-watchdog progress stamps, written by the worker around each
	// handler invocation (only when Config.StallThreshold is set) and
	// read by the watchdog goroutine. execStart is the execution start
	// (runtime-epoch nanoseconds; 0 = not executing); execTrace/
	// execSpan/execHandler describe the running event; stalled marks an
	// already-reported episode so one stuck handler emits one record.
	execStart   atomic.Int64
	execTrace   atomic.Uint64
	execSpan    atomic.Uint64
	execHandler atomic.Int32
	stalled     atomic.Bool
}

// inTransitMarker occupies a color's table slot while a steal migrates
// its queue between cores, so the lease logic keeps treating the color
// as live (a drained-looking color would be re-homed mid-migration,
// splitting it across cores). Only its identity is ever used.
var inTransitMarker = new(equeue.ColorQueue)

// Runtime is the real multicore event-coloring runtime.
type Runtime struct {
	cfg   Config
	pol   policy.Config
	topo  *topology.Topology
	table *equeue.ColorTable
	cores []*rcore

	handlers atomic.Pointer[[]handlerEntry]
	regMu    sync.Mutex

	profiles *profile.Table
	stealMon *profile.StealCostMonitor

	started atomic.Bool
	stopped atomic.Bool
	// lifeMu serializes Start/Stop transitions: without it a Stop racing
	// Start's worker-launch loop would call wg.Wait concurrently with
	// wg.Add (a documented WaitGroup misuse). Workers never take it.
	lifeMu sync.Mutex
	wg     sync.WaitGroup

	// pending counts posted-but-not-completed events (Drain). Drain
	// waiters subscribe to drainCh; workers close it when pending hits
	// zero, so an idle drain costs nothing (no polling). drainWaiters
	// keeps the zero-crossing check off the execute hot path when
	// nobody is draining.
	pending      atomic.Int64
	drainWaiters atomic.Int32
	drainMu      sync.Mutex
	drainCh      chan struct{}

	evPool sync.Pool
	// scratch pools PostBatch working memory (see batchScratch).
	scratch sync.Pool

	// epoch anchors the monotonic timer clock (see Runtime.now);
	// timersCanceled counts averted firings runtime-wide.
	epoch          time.Time
	timersCanceled atomic.Int64

	// pollSources are readiness-event sources (e.g. netpoll's epoll
	// backend) whose counters Stats folds into its Poll* fields;
	// pollRetired accumulates the final totals of retired sources so
	// Stats stays monotonic after a source shuts down.
	pollMu      sync.Mutex
	pollSources map[uint64]func() PollSample
	pollNextID  uint64
	pollRetired PollSample

	// adm is the overload-control layer (queue bounds, Reject/Block/
	// Spill admission, the spillq bridge). Nil on unbounded runtimes,
	// which therefore pay nothing on the posting hot path.
	adm *admission

	// Live observability (see obs.go): obsMask selects one in
	// Config.ObsSampleRate posts for latency sampling (obsOn false
	// disables), and ringAux is the shared flight-recorder track for
	// off-core actions (spill, reload, poll wakeups).
	obsOn   bool
	obsMask uint64
	obsSeq  atomic.Uint64
	ringAux *obs.Ring

	// Causal tracing (the flight recorder's flow layer): traceOn gates
	// every id stamp — with TraceRing negative no event field is ever
	// written, so an untraced runtime pays zero bytes per event —
	// and traceSeq allocates span ids runtime-wide (a root's trace id
	// is its own span id, so roots need no second counter).
	traceOn  bool
	traceSeq atomic.Uint64

	// Stall watchdog (Config.StallThreshold): stallOn gates the per-core
	// progress stamps on the execute path, stallStop ends the watchdog
	// goroutine, stalledCores is the live gauge, and lastStallStack
	// holds the most recent episode's full goroutine dump.
	stallOn        bool
	stallStop      chan struct{}
	stallStopOnce  sync.Once
	stalledCores   atomic.Int32
	stallMu        sync.Mutex
	lastStallStack []byte

	// Self-monitoring (Config.ObsInterval): the time-series ring +
	// health engine, built by New so readers never race Start; nil
	// when disabled. The incident fields are profile-on-anomaly's
	// rate-limit state (Config.IncidentDir), shared by the collector
	// and the stall watchdog.
	collector *tsCollector

	incidentMu   sync.Mutex
	incidentBusy bool
	lastIncident time.Time
	incidents    atomic.Int64
}

// AddPollSource registers a readiness-event source whose sample is
// summed into Stats' PollWakeups/PollEvents/PollBatchHist/WriteStalls.
// The returned retire function (idempotent) takes one final sample,
// folds it into the runtime's frozen totals, and drops the live
// source — call it when the source shuts down, after its counters
// have gone quiet, so a long-lived runtime cycling many sources does
// not accumulate dead closures while Stats keeps reporting their
// lifetime totals.
func (r *Runtime) AddPollSource(sample func() PollSample) (retire func()) {
	r.pollMu.Lock()
	defer r.pollMu.Unlock()
	if r.pollSources == nil {
		r.pollSources = make(map[uint64]func() PollSample)
	}
	id := r.pollNextID
	r.pollNextID++
	r.pollSources[id] = sample
	return func() {
		r.pollMu.Lock()
		defer r.pollMu.Unlock()
		if _, live := r.pollSources[id]; !live {
			return
		}
		delete(r.pollSources, id)
		r.pollRetired.add(sample())
	}
}

// New builds a runtime; call Start to launch the workers.
func New(cfg Config) (*Runtime, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	pol := cfg.Policy.internal()
	if pol.Steal != policy.StealNone && cfg.MaxStealColors != 1 {
		// Batch stealing is the runtime default (MaxStealColors 1 opts
		// back into the paper's one-color-per-steal protocol); the
		// simulator keeps batching off so the paper's tables regenerate
		// unchanged.
		pol.BatchSteal = true
		pol.MaxStealColors = cfg.MaxStealColors
	}
	r := &Runtime{
		cfg:      cfg,
		pol:      pol,
		topo:     detectTopology(cfg.Cores),
		table:    equeue.NewColorTable(cfg.Cores),
		profiles: profile.NewTable(0),
		stealMon: profile.NewStealCostMonitor(cfg.StealCostSeed.Nanoseconds()),
		epoch:    time.Now(),
	}
	r.evPool.New = func() any { return &equeue.Event{} }
	r.scratch.New = func() any { return &batchScratch{} }
	if cfg.ObsSampleRate > 0 {
		rate := uint64(1)
		for rate < uint64(cfg.ObsSampleRate) {
			rate <<= 1
		}
		r.obsOn = true
		r.obsMask = rate - 1
	}
	if cfg.TraceRing > 0 {
		r.ringAux = obs.NewRing(cfg.TraceRing)
		r.traceOn = true
	}
	r.stallOn = cfg.StallThreshold > 0
	empty := make([]handlerEntry, 0, 16)
	r.handlers.Store(&empty)
	stealCap := pol.MaxStealColors
	if stealCap <= 0 {
		stealCap = policy.DefaultMaxStealColors
	}
	r.cores = make([]*rcore, cfg.Cores)
	for i := range r.cores {
		c := &rcore{
			id:        i,
			wake:      make(chan struct{}, 1),
			wheel:     timerwheel.New(cfg.TimerTick, cfg.TimerWheelLevels),
			victimBuf: make([]int, 0, cfg.Cores),
			lenBuf:    make([]int, cfg.Cores),
			stealBuf:  make([]*equeue.ColorQueue, 0, stealCap),
			colorBuf:  make([]equeue.Color, 0, stealCap),
			setBuf:    make([]equeue.EventSet, 0, stealCap),
		}
		c.wheel.Owner = i
		if cfg.TraceRing > 0 {
			c.ring = obs.NewRing(cfg.TraceRing)
		}
		if pol.Layout == policy.ListLayout {
			c.list = equeue.NewListQueue()
		} else {
			c.mely = equeue.NewCoreQueue(cfg.StealCostSeed.Nanoseconds())
			c.mely.BatchThreshold = cfg.BatchThreshold
		}
		r.cores[i] = c
	}
	if cfg.MaxQueuedEvents > 0 || cfg.MaxQueuedPerColor > 0 {
		adm, err := newAdmission(r, cfg)
		if err != nil {
			return nil, err
		}
		r.adm = adm
	}
	if cfg.ObsInterval > 0 {
		r.collector = newCollector(r)
	}
	return r, nil
}

// Register adds a handler. Registration is allowed at any time, also
// while the runtime runs.
func (r *Runtime) Register(name string, fn HandlerFunc, opts ...HandlerOption) Handler {
	entry := handlerEntry{name: name, fn: fn, penalty: 1}
	for _, o := range opts {
		o.apply(&entry)
	}
	r.regMu.Lock()
	defer r.regMu.Unlock()
	old := *r.handlers.Load()
	next := make([]handlerEntry, len(old)+1)
	copy(next, old)
	next[len(old)] = entry
	r.handlers.Store(&next)
	r.profiles.Grow(len(next))
	idx := len(next) - 1
	if entry.annotated > 0 {
		r.profiles.Handler(idx).Annotate(entry.annotated.Nanoseconds())
	}
	return Handler{id: int32(idx) + 1}
}

// Start launches the worker goroutines.
func (r *Runtime) Start() error {
	r.lifeMu.Lock()
	defer r.lifeMu.Unlock()
	if r.stopped.Load() {
		return fmt.Errorf("mely: runtime already stopped")
	}
	if r.started.Swap(true) {
		return fmt.Errorf("mely: runtime already started")
	}
	r.wg.Add(len(r.cores))
	for _, c := range r.cores {
		go r.worker(c)
	}
	if r.stallOn {
		r.stallStop = make(chan struct{})
		r.wg.Add(1)
		go r.stallWatchdog()
	}
	if r.collector != nil {
		r.wg.Add(1)
		go r.collectorLoop(r.collector)
	}
	return nil
}

// Stop terminates the workers and waits for them to exit. Events still
// queued are dropped; call Drain first (or use Run) for a graceful
// shutdown. Stop is idempotent.
func (r *Runtime) Stop() {
	r.lifeMu.Lock()
	defer r.lifeMu.Unlock()
	if !r.started.Load() || r.stopped.Swap(true) {
		r.stopped.Store(true)
		if r.started.Load() {
			// An earlier Stop shut the workers down (lifeMu serializes
			// us behind it); Wait here is immediate and keeps the
			// waits-for-exit contract for every caller.
			r.wg.Wait()
		}
		if r.adm != nil {
			r.adm.close()
		}
		r.wakeDrainers() // queued events (if any) will never complete
		return
	}
	if r.adm != nil {
		// Posters blocked under OverloadBlock must observe the stop now
		// (they re-check stopped on wake), not after the workers exit.
		r.adm.wakeBlocked()
	}
	if r.stallStop != nil {
		r.stallStopOnce.Do(func() { close(r.stallStop) })
	}
	if col := r.collector; col != nil {
		col.stopOnce.Do(func() { close(col.stop) })
	}
	for _, c := range r.cores {
		c.unpark()
	}
	r.wg.Wait()
	if r.adm != nil {
		// Workers are gone; nothing reloads anymore. Tear the spill
		// store down: without SpillRecover the segments are deleted
		// (spilled events are dropped exactly like queued ones); with
		// it Close is durable — open tails are sealed and the backlog
		// survives for the next runtime's recovery.
		r.adm.close()
	}
	// Events still queued were dropped and will never complete: release
	// Drain waiters so they observe the stop instead of hanging.
	r.wakeDrainers()
}

// Close shuts the runtime down immediately and idempotently: it is Stop
// with an io.Closer-shaped signature, so a Runtime slots into defer
// chains and resource managers. Queued events are dropped; for a
// graceful shutdown call Drain first or use Run. Close never fails and
// may be called any number of times, before or after Start.
func (r *Runtime) Close() error {
	r.Stop()
	return nil
}

// Run is the context-aware lifecycle: it starts the workers, blocks
// until ctx is cancelled, drains every event posted so far, and stops.
// It returns Start's error if the runtime cannot launch, ErrStopped if
// the runtime was stopped out from under it (Stop/Close during Run)
// with events still queued, and nil after a complete drain-and-stop.
// The drain deliberately ignores ctx (which is already done by then) —
// handlers finish their queued work — so producers should stop posting
// once ctx ends; handler chains that re-post forever will hold Run
// open.
func (r *Runtime) Run(ctx context.Context) error {
	if err := r.Start(); err != nil {
		return err
	}
	<-ctx.Done()
	err := r.Drain(context.WithoutCancel(ctx))
	r.Stop()
	return err
}

// Drain waits until every posted event has been executed. It is
// event-driven: waiters sleep on a channel the workers close at the
// pending-count zero crossing, so draining an idle runtime burns no
// CPU. If the runtime stops with events still queued (Stop or Close
// without a prior drain drops them), Drain fails with ErrStopped
// rather than waiting for completions that can never happen.
func (r *Runtime) Drain(ctx context.Context) error {
	if r.pending.Load() == 0 {
		return nil
	}
	r.drainWaiters.Add(1)
	defer r.drainWaiters.Add(-1)
	for {
		r.drainMu.Lock()
		ch := r.drainCh
		if ch == nil {
			ch = make(chan struct{})
			r.drainCh = ch
		}
		r.drainMu.Unlock()
		// Re-check after subscribing: a zero crossing before this point
		// either already closed ch or is ordered before this load.
		if r.pending.Load() == 0 {
			return nil
		}
		if r.stopped.Load() {
			// The runtime stopped with this work still queued; it was
			// dropped (Stop wakes drainers on every path).
			return ErrStopped
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-ch:
		}
	}
}

// wakeDrainers releases every Drain waiter (pending reached zero).
func (r *Runtime) wakeDrainers() {
	r.drainMu.Lock()
	if r.drainCh != nil {
		close(r.drainCh)
		r.drainCh = nil
	}
	r.drainMu.Unlock()
}

// Post registers an event for handler h under the given color. It is
// safe from any goroutine, including handlers (prefer Ctx.Post there).
// After shutdown it fails with ErrStopped; on a bounded runtime
// (Config.MaxQueuedEvents / MaxQueuedPerColor) it additionally follows
// the configured OverloadPolicy — failing with ErrOverloaded, waiting
// for queue space (see PostContext to bound the wait), or spilling the
// color's tail to disk.
func (r *Runtime) Post(h Handler, color Color, data any) error {
	return r.post(nil, h, color, data, true, 0, 0)
}

// post is the shared delivery path behind Post, PostContext, Ctx.Post,
// and the bounded-runtime leg of PostBatch. external marks posts from
// outside handler context: only those can be rejected or blocked (a
// rejected or blocked continuation would wedge the workers — see
// OverloadPolicy's decision table). ptrace/pspan are the causal parent
// (the trace and span of the event whose handler is posting); zero
// makes the new event a trace root.
func (r *Runtime) post(ctx context.Context, h Handler, color Color, data any, external bool, ptrace, pspan uint64) error {
	if r.stopped.Load() {
		return ErrStopped
	}
	hs := *r.handlers.Load()
	if a := r.adm; a != nil {
		idx := int(h.id) - 1
		if idx < 0 || idx >= len(hs) {
			return unknownHandlerError(h)
		}
		route, err := a.admit(ctx, equeue.Color(color), external)
		if err != nil {
			return err
		}
		if route == routeDisk {
			return r.spillPost(hs, int32(idx), color, data, ptrace, pspan)
		}
	}
	ev, err := r.buildEvent(hs, h, color, data, ptrace, pspan)
	if err != nil {
		return err
	}
	r.pending.Add(1)
	r.enqueue(ev)
	return nil
}

func unknownHandlerError(h Handler) error {
	return fmt.Errorf("mely: unknown handler %d", h.id)
}

// buildEvent validates the handler and materializes a pooled event.
// ptrace/pspan are the causal parent's identifiers (zero = root): with
// tracing on the event gets its own span id, inheriting the parent's
// trace or founding a new one.
func (r *Runtime) buildEvent(hs []handlerEntry, h Handler, color Color, data any, ptrace, pspan uint64) (*equeue.Event, error) {
	idx := int(h.id) - 1
	if idx < 0 || idx >= len(hs) {
		return nil, unknownHandlerError(h)
	}
	entry := &hs[idx]
	ev := r.evPool.Get().(*equeue.Event)
	*ev = equeue.Event{
		Handler: equeue.HandlerID(idx),
		Color:   equeue.Color(color),
		Cost:    r.estimate(int32(idx)),
		Penalty: r.pol.EffectivePenalty(entry.penalty),
		Data:    data,
	}
	if r.obsOn && r.obsSeq.Add(1)&r.obsMask == 0 {
		// Sampled for latency observation: the stamp rides to execution,
		// where the queue delay is measured (see observeExec).
		ev.PostNanos = r.now()
	}
	if r.traceOn {
		span := r.traceSeq.Add(1)
		ev.SpanID = span
		if ptrace != 0 {
			ev.TraceID, ev.ParentSpan = ptrace, pspan
		} else {
			ev.TraceID = span // a root founds its trace under its own id
		}
	}
	return ev, nil
}

// estimate is the profiled per-execution cost in nanoseconds, the
// time-left heuristic's currency on the real platform.
func (r *Runtime) estimate(h int32) int64 {
	est := r.profiles.Handler(int(h)).Estimate()
	if est <= 0 {
		est = 1 // unprofiled handlers look cheap until measured
	}
	return est
}

// enqueue delivers an event to the current owner of its color,
// retrying when a concurrent steal moves the color. Ownership is a
// lease: when a stolen color has fully drained on its current owner
// (no pending events, not executing), it re-homes to its hash core —
// the same semantics as the simulator, and the reason load waves
// re-create the hash placement the paper measures against.
func (r *Runtime) enqueue(ev *equeue.Event) {
	for tries := 0; ; tries++ {
		if tries > 1 {
			// More than one retry means we are waiting on another
			// goroutine's progress (a thief mid-migration): yield so it
			// can run, especially when GOMAXPROCS < workers+posters.
			runtime.Gosched()
		}
		owner := r.table.OwnerHint(ev.Color)
		c := r.cores[owner]
		c.lock.Lock()
		if c.mely != nil && r.pol.TimeLeft {
			c.mely.SetStealCost(r.stealMon.Estimate())
		}
		if _, ok := r.deliverLocked(c, owner, ev); !ok {
			// Stolen between the read and the lock, or the lease just
			// expired (deliverLocked re-homed it): resolve again.
			c.lock.Unlock()
			continue
		}
		if c.list != nil {
			c.qlen.Store(int32(c.list.Len()))
		} else {
			c.qlen.Store(int32(c.mely.Len()))
			c.stealLen.Store(int32(c.mely.Stealing().Len()))
		}
		c.syncDiskLen()
		c.stats.postedHere.Add(1)
		if ev.PostNanos != 0 && c.ring != nil {
			c.ring.AppendFlow(obs.KindPost, ev.PostNanos, 0, uint64(ev.Color), uint32(ev.Handler),
				ev.TraceID, ev.SpanID, ev.ParentSpan)
		}
		c.lock.Unlock()
		c.unpark()
		return
	}
}

// deliverLocked is the single lease-protocol delivery step, shared by
// the per-event path (enqueue) and the batch path (deliverGroup). The
// caller holds c.lock and resolved owner == c.id for ev's color. It
// re-checks ownership against the table, applies the lease re-home
// rule, and pushes on success, returning the ColorQueue pushed to (nil
// for the list layout). ok=false means the color moved — stolen away,
// or its expired lease was just re-homed here — and the caller must
// re-route the event.
func (r *Runtime) deliverLocked(c *rcore, owner int, ev *equeue.Event) (*equeue.ColorQueue, bool) {
	if home := r.table.Hash(ev.Color); owner == home {
		// Home delivery, the common case: one stripe hop re-checks
		// ownership and installs the queue (see DeliverHome).
		if c.list != nil {
			cq, _, ok := r.table.DeliverHome(ev.Color, nil)
			if !ok || cq == inTransitMarker {
				return nil, false // stolen, or in transit: wait it out
			}
			c.list.PushBack(ev)
			return nil, true
		}
		fresh := c.mely.NewColorQueue(ev.Color)
		cq, installed, ok := r.table.DeliverHome(ev.Color, fresh)
		if !ok || cq == inTransitMarker {
			// Stolen since resolution, or mid-migration. A color in
			// transit REJECTS deliveries — the caller retries until the
			// thief has adopted. Installing a queue over the marker
			// would erase the in-transit state and make the new queue
			// stealable before the first thief lands, letting a second
			// steal interleave and split the color across two cores.
			c.mely.ReleaseColorQueue(fresh)
			return nil, false
		}
		if !installed {
			c.mely.ReleaseColorQueue(fresh)
		}
		if c.mely.Push(cq, ev) {
			c.stats.colorQueueChurns.Add(1)
		}
		return cq, true
	} else {
		// Away-from-home (leased) delivery: re-check owner and fetch
		// the queue in one hop, then apply the lease re-home rule.
		curOwner, cq := r.table.OwnerAndQueue(ev.Color)
		if curOwner != owner {
			return nil, false
		}
		if cq == inTransitMarker {
			return nil, false // in transit: wait for adoption (see above)
		}
		live := (c.hasRunning && c.running == ev.Color)
		if !live {
			if c.list != nil {
				live = c.list.Pending(ev.Color) > 0
			} else {
				live = cq != nil && cq.Len() > 0
			}
		}
		if !live {
			// Lease expired: re-home; the caller retries at home. The
			// color's pending timers follow its lease (the re-home half
			// of timer color-affinity).
			r.table.SetOwner(ev.Color, home)
			r.migrateTimersOnReHome(c, ev.Color, home)
			if c.ring != nil {
				c.ring.Append(obs.KindReHome, r.now(), 0, uint64(ev.Color), uint32(home))
			}
			return nil, false
		}
		if c.list != nil {
			c.list.PushBack(ev)
			return nil, true
		}
		if cq == nil {
			cq = c.mely.NewColorQueue(ev.Color)
			r.table.SetQueue(ev.Color, cq)
		}
		if c.mely.Push(cq, ev) {
			c.stats.colorQueueChurns.Add(1)
		}
		return cq, true
	}
}

// worker is the per-core scheduling loop.
func (r *Runtime) worker(c *rcore) {
	defer r.wg.Done()
	runtime.LockOSThread()
	defer runtime.UnlockOSThread()
	if r.cfg.Pin {
		_ = affinity.Pin(c.id) // best effort; unpinned is correct, just less local
	}

	// idle counts consecutive fruitless rounds (no local work, steal
	// probe failed or disabled). It survives parks, so repeated failed
	// probes back off exponentially (see below) until any success.
	idle := 0
	for !r.stopped.Load() {
		// Expire due timers first so deadline work cannot starve behind
		// a deep event backlog; the check is one atomic load when
		// nothing is due.
		if r.harvestTimers(c) > 0 {
			idle = 0
			continue
		}
		if ev := r.popLocal(c); ev != nil {
			r.execute(c, ev)
			idle = 0
			continue
		}
		if r.pol.Steal != policy.StealNone && r.stealOnce(c) {
			idle = 0
			continue
		}
		idle++
		if idle <= r.cfg.IdleSpins {
			runtime.Gosched()
			continue
		}
		// Adaptive steal throttling: when probes keep failing — the
		// steal-storm shape, many cores idle and hammering the same few
		// victim locks — park for exponentially growing slices
		// (StealBackoff, 2x per fruitless round, capped at ParkTimeout)
		// instead of a full ParkTimeout, so a lone idle worker reacts
		// fast while a stampede quiets itself. An unpark (new work) or
		// any successful round resets the streak.
		d := r.cfg.ParkTimeout
		if r.cfg.StealBackoff > 0 {
			// Double per fruitless round, stopping at the ParkTimeout
			// ceiling — doubling instead of shifting by the streak so a
			// large StealBackoff cannot overflow into a negative park.
			bd := r.cfg.StealBackoff
			for i := r.cfg.IdleSpins + 1; i < idle && bd < d; i++ {
				bd <<= 1
			}
			if bd < d {
				d = bd
				c.stats.backoffParks.Add(1)
			}
		}
		// Sleep no longer than the wheel's next expiry: the park is the
		// timer resolution floor for an otherwise-idle core.
		if d = r.timerParkBound(c, d); d <= 0 {
			continue // a timer is already due; harvest instead of parking
		}
		c.stats.parks.Add(1)
		c.park(d)
	}
}

// popLocal dequeues the next event of c's queue, maintaining the
// running color for thieves.
func (r *Runtime) popLocal(c *rcore) *equeue.Event {
	c.lock.Lock()
	var ev *equeue.Event
	if c.list != nil {
		ev = c.list.PopFront()
		c.qlen.Store(int32(c.list.Len()))
	} else {
		if r.pol.TimeLeft {
			c.mely.SetStealCost(r.stealMon.Estimate())
		}
		var emptied *equeue.ColorQueue
		ev, emptied = c.mely.PopNext()
		if emptied != nil {
			r.table.ClearQueue(emptied.Color(), emptied)
			c.mely.ReleaseColorQueue(emptied)
			c.stats.colorQueueChurns.Add(1)
		}
		c.qlen.Store(int32(c.mely.Len()))
		c.stealLen.Store(int32(c.mely.Stealing().Len()))
	}
	c.syncDiskLen()
	if ev != nil {
		c.running, c.hasRunning = ev.Color, true
	}
	c.lock.Unlock()
	return ev
}

// execute runs the handler and feeds the profiler. A panicking handler
// is contained: the event is dropped, the panic counted, and the worker
// lives on (one bad event must not take down the whole core).
func (r *Runtime) execute(c *rcore, ev *equeue.Event) {
	hs := *r.handlers.Load()
	entry := &hs[ev.Handler]
	start := time.Now()
	if entry.fn != nil {
		if r.stallOn {
			// Progress stamp for the stall watchdog: the descriptive
			// fields land before execStart so the watchdog (which keys
			// off a nonzero execStart) never reads a half-written stamp.
			c.execTrace.Store(ev.TraceID)
			c.execSpan.Store(ev.SpanID)
			c.execHandler.Store(int32(ev.Handler))
			c.execStart.Store(start.Sub(r.epoch).Nanoseconds())
		}
		c.ctx = Ctx{r: r, core: c, ev: ev}
		runHandler(entry, &c.ctx, &c.stats)
		c.ctx.ev = nil // the event is about to be zeroed and pooled
		if r.stallOn {
			c.execStart.Store(0)
			c.stalled.Store(false) // the episode (if any) ended with the handler
		}
	}
	elapsed := time.Since(start).Nanoseconds()
	if elapsed < 1 {
		elapsed = 1
	}
	r.profiles.Handler(int(ev.Handler)).Observe(elapsed)
	c.stats.events.Add(1)
	c.stats.execNanos.Add(elapsed)
	if ev.Stolen {
		c.stats.stolenEvents.Add(1)
		c.stats.stolenExecNanos.Add(elapsed)
	}
	if ev.PostNanos != 0 || c.ring != nil {
		r.observeExec(c, ev, start, elapsed)
	}
	color := ev.Color
	slabbed := ev.Slab
	*ev = equeue.Event{} // release the payload reference promptly either way
	if !slabbed {
		r.evPool.Put(ev)
	}
	if a := r.adm; a != nil {
		// Overload accounting: the queued-events gauge drops, blocked
		// posters get a wake, and a spilling color that drained to its
		// low-water mark pulls the next batch back from disk. Runs
		// before the pending decrement so Drain cannot observe zero
		// while this color still has a disk tail to reload.
		a.noteExec(color)
	}
	if r.pending.Add(-1) == 0 && r.drainWaiters.Load() > 0 {
		r.wakeDrainers()
	}
}

// runHandler invokes the handler with panic containment.
func runHandler(entry *handlerEntry, ctx *Ctx, stats *rstats) {
	defer func() {
		if recover() != nil {
			stats.panics.Add(1)
		}
	}()
	entry.fn(ctx)
}

// syncDiskLen refreshes the unlocked spill-backlog mirror from the
// queue aggregate. Caller holds c.lock. Guarded so runs without spill
// never pay the atomic store (the aggregate and the mirror both stay 0).
func (c *rcore) syncDiskLen() {
	var t int
	if c.list != nil {
		t = c.list.SpillBacklogTotal()
	} else {
		t = c.mely.SpillBacklogTotal()
	}
	if t != 0 || c.diskLen.Load() != 0 {
		c.diskLen.Store(int32(t))
	}
}

// clearRunning marks the worker as not executing (before stealing or
// parking) so its last color becomes stealable again.
func (c *rcore) clearRunning() {
	c.lock.Lock()
	c.hasRunning = false
	c.lock.Unlock()
}

func (c *rcore) park(d time.Duration) {
	c.clearRunning()
	// A wake token may already be buffered: a post landed after our last
	// queue scan (every unpark sends unconditionally, so the token
	// cannot be missed the way the old parked-flag handshake could —
	// unpark used to read the flag before park stored it, and a post in
	// that window waited out the full ParkTimeout). Consume it and
	// return to re-scan instead of sleeping.
	select {
	case <-c.wake:
		return
	default:
	}
	// One reusable timer per core: parks are the worker's steady idle
	// state and a fresh time.NewTimer per park was a measurable
	// allocation on the idle path. The stop-and-drain before Reset
	// clears a stale expiry from a wake-interrupted park; a value that
	// slips through at worst ends one future park early, which is always
	// safe here (the loop just re-scans).
	if c.parkTimer == nil {
		c.parkTimer = time.NewTimer(d)
	} else {
		if !c.parkTimer.Stop() {
			select {
			case <-c.parkTimer.C:
			default:
			}
		}
		c.parkTimer.Reset(d)
	}
	select {
	case <-c.wake:
	case <-c.parkTimer.C:
	}
}

// unpark deposits a wake token unconditionally (non-blocking, buffered
// chan of one): if the worker is awake the token makes its next park
// return immediately, closing the missed-wakeup window.
func (c *rcore) unpark() {
	select {
	case c.wake <- struct{}{}:
	default:
	}
}

// rcoreView adapts a locked rcore to policy.VictimView.
type rcoreView struct{ c *rcore }

func (v rcoreView) QueuedEvents() int {
	if v.c.list != nil {
		return v.c.list.Len()
	}
	return v.c.mely.Len()
}

func (v rcoreView) DistinctColors() int {
	if v.c.list != nil {
		return v.c.list.DistinctColors()
	}
	return v.c.mely.Colors()
}

func (v rcoreView) RunningColor() (equeue.Color, bool) {
	return v.c.running, v.c.hasRunning
}

func (v rcoreView) HasColorOtherThan(col equeue.Color) bool {
	if v.DistinctColors() >= 2 {
		return true
	}
	if v.c.list != nil {
		first, ok := v.c.list.FirstColor()
		return ok && first != col
	}
	first, ok := v.c.mely.FirstColor()
	return ok && first != col
}

func (v rcoreView) Stealing() *equeue.StealingQueue {
	if v.c.mely == nil {
		return nil
	}
	return v.c.mely.Stealing()
}

// stealOnce runs one pass of the workstealing algorithm (Figure 2 plus
// the configured heuristics) and reports whether work was migrated.
func (r *Runtime) stealOnce(c *rcore) bool {
	c.clearRunning()
	c.stats.stealAttempts.Add(1)
	start := time.Now()

	// Rank victims by effective depth: in-memory events plus the
	// mirrored spill backlog of the colors linked there, so a victim
	// whose fat colors live on disk is not misread as lightly loaded.
	// diskLen is 0 whenever spill is off, leaving the ranking unchanged.
	for i, v := range r.cores {
		c.lenBuf[i] = int(v.qlen.Load()) + int(v.diskLen.Load())
	}
	order := r.pol.VictimOrder(c.id, c.lenBuf, r.topo, c.victimBuf)

	for _, vid := range order {
		v := r.cores[vid]
		// Heuristic policies screen victims with the unlocked
		// mirrors; the base algorithm locks blindly, as in the paper.
		if r.pol.Steal == policy.StealHeuristic {
			if v.qlen.Load() == 0 {
				continue
			}
			if r.pol.TimeLeft && v.stealLen.Load() == 0 {
				continue
			}
		}

		// One victim-lock critical section selects and detaches the
		// whole steal set (a single color unless batch stealing is on)
		// and publishes every lease in one table pass.
		v.lock.Lock()
		var (
			sets   []equeue.EventSet
			cqs    []*equeue.ColorQueue
			colors []equeue.Color
		)
		if r.pol.CanBeStolen(rcoreView{v}) {
			if v.list != nil {
				colors, _ = r.pol.SelectStealColors(v.list, v.running, v.hasRunning, c.colorBuf)
				if len(colors) > 0 {
					sets, _ = v.list.ExtractColorSet(colors, c.setBuf)
				}
			} else {
				if r.pol.TimeLeft {
					v.mely.SetStealCost(r.stealMon.Estimate())
				}
				cqs, _ = r.pol.SelectStealSet(v.mely, v.running, v.hasRunning, c.stealBuf)
				colors = c.colorBuf[:0]
				for _, cq := range cqs {
					colors = append(colors, cq.Color())
				}
			}
		}
		if len(colors) > 0 {
			// Ownership moves under the victim's lock; posters that
			// race will retry against our core. The transit marker
			// keeps each color "live" until adoption so the lease
			// logic cannot re-home it mid-migration. Owner and marker
			// are published in one stripe acquisition per color — and
			// colors sharing a stripe share one acquisition — because
			// a two-step publish would expose a detached queue to
			// posters that already see the new owner.
			r.table.BeginMigrationBatch(colors, c.id, inTransitMarker)
			if v.mely != nil {
				v.stealLen.Store(int32(v.mely.Stealing().Len()))
			}
			v.qlen.Store(int32(rcoreView{v}.QueuedEvents()))
			v.syncDiskLen()
		}
		v.lock.Unlock()
		if len(colors) == 0 {
			continue
		}

		// Migrate the whole batch into our own queue under one
		// self-lock hold. Between BeginMigrationBatch and here the
		// table holds the in-transit marker for every stolen color and
		// every delivery backs off (deliverLocked), so the markers are
		// necessarily still in place: no poster can have installed a
		// queue over one, and no second thief can have found anything
		// of these colors to steal.
		c.lock.Lock()
		if c.list != nil {
			for i := range sets {
				sets[i].MarkStolen()
				c.list.AppendSet(sets[i])
			}
			c.qlen.Store(int32(c.list.Len()))
			for _, color := range colors {
				if r.table.Queue(color) == inTransitMarker {
					r.table.SetQueue(color, nil)
				}
			}
		} else {
			for _, cq := range cqs {
				cq.MarkStolen()
				color := cq.Color()
				if existing := r.table.Queue(color); existing != nil && existing != inTransitMarker {
					// Defense in depth: unreachable under the protocol
					// above, but if a queue ever did appear during
					// transit, merging oldest-first is the safe recovery.
					c.mely.MergeFront(existing, cq)
					c.mely.ReleaseColorQueue(cq)
				} else {
					c.mely.Adopt(cq)
					r.table.SetQueue(color, cq)
				}
			}
			c.qlen.Store(int32(c.mely.Len()))
			c.stealLen.Store(int32(c.mely.Stealing().Len()))
		}
		c.syncDiskLen()
		c.lock.Unlock()

		// The stolen colors' pending timers migrate with them (the
		// steal half of timer color-affinity): harvest stays local to
		// the new owner. Entries cut loose here and re-armed against
		// the victim by a racing poster still fire correctly — delivery
		// re-resolves ownership — they just cost a remote post.
		r.migrateTimersOnSteal(c, v, colors)

		dt := time.Since(start).Nanoseconds()
		if c.ring != nil {
			c.ring.Append(obs.KindSteal, start.Sub(r.epoch).Nanoseconds(), dt,
				uint64(vid), uint32(len(colors)))
		}
		c.stats.steals.Add(1)
		c.stats.stolenColors.Add(int64(len(colors)))
		c.stats.batchHist[stealBatchBucket(len(colors))].Add(1)
		if !r.topo.SharesCache(c.id, vid) {
			c.stats.remoteSteals.Add(1)
		}
		c.stats.stealNanos.Add(dt)
		r.stealMon.Observe(dt)
		if len(colors) > 1 && len(r.cores) > 2 {
			// The batch brought home more colors than one worker can
			// drain at once; one wakeup lets a parked neighbor steal
			// the surplus onward instead of sleeping out its timeout.
			// One, not len(colors): cascading thieves wake the next
			// neighbor themselves if work remains. Skip the victim —
			// it has its own work and would not re-steal the surplus.
			next := (c.id + 1) % len(r.cores)
			if next == vid {
				next = (next + 1) % len(r.cores)
			}
			r.cores[next].unpark()
		}
		return true
	}

	c.stats.failedSteals.Add(1)
	return false
}

// Ctx is the execution context of a running handler.
type Ctx struct {
	r    *Runtime
	core *rcore
	ev   *equeue.Event
}

// Post registers a follow-up event. It is an internal continuation:
// on a bounded runtime it is never rejected or blocked (that would
// wedge the worker executing this handler), though a spilling color's
// tail discipline still applies under OverloadSpill. The new event
// inherits this event's causal lineage (same trace, parented on this
// span) when tracing is on.
func (ctx *Ctx) Post(h Handler, color Color, data any) error {
	return ctx.r.post(nil, h, color, data, false, ctx.ev.TraceID, ctx.ev.SpanID)
}

// Data returns the event's payload.
func (ctx *Ctx) Data() any { return ctx.ev.Data }

// Color returns the event's color.
func (ctx *Ctx) Color() Color { return Color(ctx.ev.Color) }

// CoreID identifies the worker executing the handler.
func (ctx *Ctx) CoreID() int { return ctx.core.id }

// Stolen reports whether a steal migrated this event before execution.
func (ctx *Ctx) Stolen() bool { return ctx.ev.Stolen }

// TraceID returns the executing event's causal trace id — the id of
// the ingress root this event descends from (zero with tracing off).
func (ctx *Ctx) TraceID() uint64 { return ctx.ev.TraceID }

// SpanID returns the executing event's own span id (zero with tracing
// off). Events posted from this handler are parented on it.
func (ctx *Ctx) SpanID() uint64 { return ctx.ev.SpanID }

// Runtime returns the owning runtime.
func (ctx *Ctx) Runtime() *Runtime { return ctx.r }
