package mely

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestOverloadRejectErrorsIs: external posts past the bound fail with
// ErrOverloaded (detected via errors.Is), and the rejection is counted.
func TestOverloadRejectErrorsIs(t *testing.T) {
	r := newRuntime(t, Config{Cores: 1, MaxQueuedEvents: 4})
	defer r.Close()
	h := r.Register("noop", func(ctx *Ctx) {})

	// Not started: events stay queued, so the bound is hit exactly.
	for i := 0; i < 4; i++ {
		if err := r.Post(h, Color(i), i); err != nil {
			t.Fatalf("post %d: %v", i, err)
		}
	}
	err := r.Post(h, 99, "over")
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("over-bound post = %v, want ErrOverloaded", err)
	}
	if fmt.Sprintf("%v", err) == "" {
		t.Fatal("ErrOverloaded must have a message")
	}
	s := r.Stats()
	if s.RejectedPosts != 1 {
		t.Fatalf("RejectedPosts = %d, want 1", s.RejectedPosts)
	}
	if s.QueuedEvents != 4 {
		t.Fatalf("QueuedEvents = %d, want 4", s.QueuedEvents)
	}
}

// TestOverloadRejectPerColor: the per-color bound saturates one color
// while its neighbors keep posting.
func TestOverloadRejectPerColor(t *testing.T) {
	r := newRuntime(t, Config{Cores: 1, MaxQueuedPerColor: 2})
	defer r.Close()
	h := r.Register("noop", func(ctx *Ctx) {})

	for i := 0; i < 2; i++ {
		if err := r.Post(h, 7, i); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Post(h, 7, "over"); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("per-color over-bound post = %v, want ErrOverloaded", err)
	}
	if !r.Saturated(7) {
		t.Fatal("Saturated(7) must report the full color")
	}
	if r.Saturated(8) {
		t.Fatal("Saturated(8) must not: other colors are unaffected")
	}
	if err := r.Post(h, 8, "fine"); err != nil {
		t.Fatalf("neighbor color post: %v", err)
	}
}

// TestOverloadBlockPostVsDrain: a poster blocked at the bound and a
// concurrent Drain must both complete once the workers drain the
// queues — the Post-vs-Drain interleaving of the Block policy.
func TestOverloadBlockPostVsDrain(t *testing.T) {
	r := newRuntime(t, Config{
		Cores:           2,
		MaxQueuedEvents: 2,
		OverloadPolicy:  OverloadBlock,
	})
	defer r.Close()

	gate := make(chan struct{})
	var executed atomic.Int64
	h := r.Register("gated", func(ctx *Ctx) {
		<-gate
		executed.Add(1)
	})

	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	// Fill the bound (the workers pick events up but the handler gates).
	for i := 0; i < 2; i++ {
		if err := r.Post(h, Color(i), i); err != nil {
			t.Fatal(err)
		}
	}
	// Blocked poster.
	posted := make(chan error, 1)
	go func() { posted <- r.Post(h, 50, "blocked") }()
	// Concurrent drainer.
	drained := make(chan error, 1)
	go func() { drained <- r.Drain(context.Background()) }()

	select {
	case err := <-posted:
		t.Fatalf("post returned %v before the queue drained", err)
	case <-time.After(50 * time.Millisecond):
	}

	close(gate) // release the handlers: queue drains, poster unblocks
	if err := <-posted; err != nil {
		t.Fatalf("blocked post: %v", err)
	}
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	if err := r.Drain(context.Background()); err != nil {
		t.Fatalf("final drain: %v", err)
	}
	if got := executed.Load(); got != 3 {
		t.Fatalf("executed %d events, want 3", got)
	}
	if s := r.Stats(); s.BlockedPosts < 1 {
		t.Fatalf("BlockedPosts = %d, want >= 1", s.BlockedPosts)
	}
}

// TestOverloadBlockContextCancel: PostContext bounds the Block wait.
func TestOverloadBlockContextCancel(t *testing.T) {
	r := newRuntime(t, Config{
		Cores:           1,
		MaxQueuedEvents: 1,
		OverloadPolicy:  OverloadBlock,
	})
	defer r.Close()
	h := r.Register("noop", func(ctx *Ctx) {})
	if err := r.Post(h, 1, nil); err != nil { // fills the bound (not started)
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	err := r.PostContext(ctx, h, 2, nil)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("PostContext = %v, want DeadlineExceeded", err)
	}
}

// TestOverloadBlockStopReleases: Stop must release blocked posters
// with ErrStopped instead of leaving them hung.
func TestOverloadBlockStopReleases(t *testing.T) {
	r := newRuntime(t, Config{
		Cores:           1,
		MaxQueuedEvents: 1,
		OverloadPolicy:  OverloadBlock,
	})
	h := r.Register("noop", func(ctx *Ctx) {})
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	block := make(chan struct{})
	hGate := r.Register("gate", func(ctx *Ctx) { <-block })
	if err := r.Post(hGate, 1, nil); err != nil {
		t.Fatal(err)
	}
	// The gated handler holds the bound's only slot, so this poster
	// blocks.
	posted := make(chan error, 1)
	go func() { posted <- r.Post(h, 3, nil) }()
	time.Sleep(20 * time.Millisecond)
	select {
	case err := <-posted:
		t.Fatalf("post returned %v while the bound was held", err)
	default:
	}
	// Stop with the poster still blocked: it must be released with
	// ErrStopped. Stop itself waits for the gated handler, so release
	// the gate once the stop is underway.
	stopDone := make(chan struct{})
	go func() { r.Stop(); close(stopDone) }()
	select {
	case err := <-posted:
		if !errors.Is(err, ErrStopped) {
			t.Fatalf("blocked post after Stop = %v, want ErrStopped", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("blocked poster hung across Stop")
	}
	close(block)
	select {
	case <-stopDone:
	case <-time.After(2 * time.Second):
		t.Fatal("Stop hung")
	}
}

// TestOverloadSpillZeroLossBoundedDrain is the acceptance test of the
// spill subsystem: a sustained overload run (producer far outpacing
// the consumer past MaxQueuedEvents) under OverloadSpill must hold the
// in-memory queued gauge at or below the configured bound, lose zero
// events, and fully drain after the burst.
func TestOverloadSpillZeroLossBoundedDrain(t *testing.T) {
	const (
		bound  = 64
		total  = 5000
		colors = 4
	)
	dir := t.TempDir()
	r := newRuntime(t, Config{
		Cores:           2,
		MaxQueuedEvents: bound,
		OverloadPolicy:  OverloadSpill,
		SpillDir:        dir,
	})
	defer r.Close()

	var executed atomic.Int64
	var seen [colors]atomic.Int64
	h := r.Register("work", func(ctx *Ctx) {
		// Verify per-color FIFO across the spill boundary: payloads of
		// one color must arrive in posting order.
		idx := int(ctx.Color()) % colors
		want := seen[idx].Add(1) - 1
		if got := int64(ctx.Data().(int)); got != want {
			t.Errorf("color %d: payload %d out of order (want %d)", idx, got, want)
		}
		executed.Add(1)
		time.Sleep(20 * time.Microsecond) // consumer deliberately slow
	})
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}

	// Skewed producer: 70% of the burst lands on one color.
	counts := make([]int, colors)
	var maxQueued int64
	for i := 0; i < total; i++ {
		c := 0
		if i%10 >= 7 {
			c = 1 + i%(colors-1)
		}
		if err := r.Post(h, Color(c), counts[c]); err != nil {
			t.Fatalf("post %d: %v", i, err)
		}
		counts[c]++
		if i%64 == 0 {
			if q := r.Stats().QueuedEvents; q > maxQueued {
				maxQueued = q
			}
		}
	}
	s := r.Stats()
	if s.SpilledEvents == 0 {
		t.Fatal("the burst must actually have spilled (producer too slow?)")
	}
	if q := s.QueuedEvents; q > maxQueued {
		maxQueued = q
	}
	if maxQueued > bound {
		t.Fatalf("in-memory queued events peaked at %d, bound is %d", maxQueued, bound)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := r.Drain(ctx); err != nil {
		t.Fatalf("drain after burst: %v", err)
	}
	if got := executed.Load(); got != total {
		t.Fatalf("executed %d of %d events (lost %d)", got, total, total-int64(got))
	}
	s = r.Stats()
	if s.ReloadedEvents != s.SpilledEvents {
		t.Fatalf("reloaded %d != spilled %d after full drain", s.ReloadedEvents, s.SpilledEvents)
	}
	if s.SpilledNow != 0 || s.QueuedEvents != 0 {
		t.Fatalf("gauges after drain: disk=%d mem=%d, want 0/0", s.SpilledNow, s.QueuedEvents)
	}
	if s.SpillErrors != 0 {
		t.Fatalf("SpillErrors = %d, want 0 (all payloads encodable)", s.SpillErrors)
	}
	t.Logf("spilled=%d reloaded=%d maxQueued=%d depthHist=%v",
		s.SpilledEvents, s.ReloadedEvents, maxQueued, s.SpillDepthHist)

	// Stop removes the runtime's segment files from the explicit dir.
	r.Stop()
	segs, _ := filepath.Glob(filepath.Join(dir, "*.seg"))
	if len(segs) != 0 {
		t.Fatalf("segment files survived Stop: %v", segs)
	}
}

// TestOverloadSpillStealInterplay: a spilling color must stay visible
// to thieves and its disk tail must follow the color wherever steals
// move it (reloads deliver through the ownership lease). With several
// cores and all load on colors of one home core, stealing happens by
// construction; the invariant checked is zero loss plus serial FIFO
// execution per color.
func TestOverloadSpillStealInterplay(t *testing.T) {
	const total = 3000
	r := newRuntime(t, Config{
		Cores:           4,
		MaxQueuedEvents: 32,
		OverloadPolicy:  OverloadSpill,
	})
	defer r.Close()

	var executed, stolen atomic.Int64
	var mu sync.Mutex
	lastPerColor := map[Color]int{}
	h := r.Register("work", func(ctx *Ctx) {
		mu.Lock()
		if want := lastPerColor[ctx.Color()]; ctx.Data().(int) != want {
			t.Errorf("color %d: got %d, want %d", ctx.Color(), ctx.Data().(int), want)
		}
		lastPerColor[ctx.Color()]++
		mu.Unlock()
		if ctx.Stolen() {
			stolen.Add(1)
		}
		executed.Add(1)
		time.Sleep(5 * time.Microsecond)
	}, WithCostEstimate(100*time.Microsecond))
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}

	// Two fat colors: both will spill; with 4 cores the idle ones must
	// steal them (and the reloaded tails must follow).
	seq := [2]int{}
	for i := 0; i < total; i++ {
		c := Color(1 + i%2)
		if err := r.Post(h, c, seq[i%2]); err != nil {
			t.Fatal(err)
		}
		seq[i%2]++
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := r.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if got := executed.Load(); got != total {
		t.Fatalf("executed %d of %d", got, total)
	}
	s := r.Stats()
	if s.SpilledEvents == 0 {
		t.Fatal("expected spilling under a 32-event bound")
	}
	t.Logf("spilled=%d reloaded=%d stolenEvents=%d", s.SpilledEvents, s.ReloadedEvents, stolen.Load())
}

// TestOverloadSpillUnencodablePayload: payload kinds that cannot cross
// the disk boundary fall back to in-memory delivery (counted, never
// lost).
func TestOverloadSpillUnencodablePayload(t *testing.T) {
	type opaque struct{ n int }
	r := newRuntime(t, Config{
		Cores:           1,
		MaxQueuedEvents: 2,
		OverloadPolicy:  OverloadSpill,
	})
	defer r.Close()
	var got atomic.Int64
	h := r.Register("work", func(ctx *Ctx) {
		if o, ok := ctx.Data().(*opaque); ok {
			got.Add(int64(o.n))
		}
	})
	// Fill the bound before starting, then overflow with pointers.
	for i := 0; i < 2; i++ {
		if err := r.Post(h, 1, &opaque{n: 1}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		if err := r.Post(h, 1, &opaque{n: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := r.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if got.Load() != 5 {
		t.Fatalf("delivered %d payloads, want 5", got.Load())
	}
	if s := r.Stats(); s.SpillErrors != 3 {
		t.Fatalf("SpillErrors = %d, want 3 (unencodable fallbacks)", s.SpillErrors)
	}
}

// TestOverloadSpillCrashOrphanCleanup: stale segment files in an
// explicit SpillDir are removed when the runtime opens it.
func TestOverloadSpillCrashOrphanCleanup(t *testing.T) {
	dir := t.TempDir()
	orphan := filepath.Join(dir, "cdeadbeefdeadbeef-000001.seg")
	if err := os.WriteFile(orphan, []byte("stale from a crashed run"), 0o644); err != nil {
		t.Fatal(err)
	}
	r := newRuntime(t, Config{
		Cores:           1,
		MaxQueuedEvents: 8,
		OverloadPolicy:  OverloadSpill,
		SpillDir:        dir,
	})
	defer r.Close()
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Fatalf("crash orphan survived startup: %v", err)
	}
}

// TestOverloadSpillTimerRouting: timer firings of a spilling color join
// the disk tail (FIFO discipline) instead of jumping its queue, and
// nothing is lost.
func TestOverloadSpillTimerRouting(t *testing.T) {
	r := newRuntime(t, Config{
		Cores:           1,
		MaxQueuedEvents: 4,
		OverloadPolicy:  OverloadSpill,
	})
	defer r.Close()
	var fired, worked atomic.Int64
	hWork := r.Register("work", func(ctx *Ctx) {
		worked.Add(1)
		time.Sleep(50 * time.Microsecond)
	})
	hTimer := r.Register("tick", func(ctx *Ctx) { fired.Add(1) })
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	const color = 5
	for i := 0; i < 200; i++ {
		if err := r.Post(hWork, color, i); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := r.PostAfter(hTimer, color, time.Millisecond, nil); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := r.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if worked.Load() != 200 || fired.Load() != 1 {
		t.Fatalf("worked=%d fired=%d, want 200/1", worked.Load(), fired.Load())
	}
}

// TestOverloadSpillRaceStress hammers a small bound from many posters
// over overlapping colors — the -race exercise of the spill/reload
// protocol (admission shard state, store, mirror sync, reload-enqueue
// vs steals).
func TestOverloadSpillRaceStress(t *testing.T) {
	const (
		posters   = 8
		perPoster = 400
		colors    = 6
	)
	r := newRuntime(t, Config{
		Cores:             2,
		MaxQueuedEvents:   24,
		MaxQueuedPerColor: 8,
		OverloadPolicy:    OverloadSpill,
	})
	defer r.Close()
	var executed atomic.Int64
	h := r.Register("work", func(ctx *Ctx) {
		executed.Add(1)
	})
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for p := 0; p < posters; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perPoster; i++ {
				c := Color((p + i) % colors)
				var err error
				switch i % 3 {
				case 0:
					err = r.Post(h, c, i)
				case 1:
					err = r.PostContext(context.Background(), h, c, int64(i))
				default:
					err = r.PostBatch([]BatchEvent{
						{Handler: h, Color: c, Data: "s"},
					})
				}
				if err != nil {
					t.Errorf("poster %d: %v", p, err)
					return
				}
			}
		}(p)
	}
	wg.Wait()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := r.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if got := executed.Load(); got != posters*perPoster {
		t.Fatalf("executed %d of %d", got, posters*perPoster)
	}
	s := r.Stats()
	if s.QueuedEvents != 0 || s.SpilledNow != 0 {
		t.Fatalf("gauges after drain: mem=%d disk=%d", s.QueuedEvents, s.SpilledNow)
	}
	if s.ReloadedEvents != s.SpilledEvents {
		t.Fatalf("reloaded %d != spilled %d", s.ReloadedEvents, s.SpilledEvents)
	}
}

// TestUnboundedRuntimeHasNoAdmission: the zero-config fast path must
// not construct the overload layer at all.
func TestUnboundedRuntimeHasNoAdmission(t *testing.T) {
	r := newRuntime(t, Config{Cores: 1})
	defer r.Close()
	if r.adm != nil {
		t.Fatal("unbounded runtime must not build an admission layer")
	}
	if r.Saturated(1) {
		t.Fatal("unbounded runtime can never be saturated")
	}
}
