package mely_test

import (
	"context"
	"fmt"
	"log"

	"github.com/melyruntime/mely"
)

// The fundamental pattern: per-color state needs no locks because
// events of one color never run concurrently.
func Example() {
	rt, err := mely.New(mely.Config{Cores: 2})
	if err != nil {
		log.Fatal(err)
	}

	counter := 0 // touched only under color 7: no lock needed
	count := rt.Register("count", func(ctx *mely.Ctx) {
		counter += ctx.Data().(int)
	})

	if err := rt.Start(); err != nil {
		log.Fatal(err)
	}
	defer rt.Stop()

	for i := 1; i <= 4; i++ {
		if err := rt.Post(count, 7, i); err != nil {
			log.Fatal(err)
		}
	}
	if err := rt.Drain(context.Background()); err != nil {
		log.Fatal(err)
	}
	fmt.Println(counter)
	// Output: 10
}

// Handlers chain by posting follow-up events; a pipeline stays on one
// color so its stages serialize, while other colors run in parallel.
func ExampleCtx_Post() {
	rt, err := mely.New(mely.Config{Cores: 2})
	if err != nil {
		log.Fatal(err)
	}

	results := make(chan string, 1)
	var stage2 mely.Handler
	stage2 = rt.Register("stage2", func(ctx *mely.Ctx) {
		results <- ctx.Data().(string) + " world"
	})
	stage1 := rt.Register("stage1", func(ctx *mely.Ctx) {
		if err := ctx.Post(stage2, ctx.Color(), ctx.Data().(string)+","); err != nil {
			log.Fatal(err)
		}
	})

	if err := rt.Start(); err != nil {
		log.Fatal(err)
	}
	defer rt.Stop()

	if err := rt.Post(stage1, 3, "hello"); err != nil {
		log.Fatal(err)
	}
	fmt.Println(<-results)
	// Output: hello, world
}

// Typed handlers read their payload without an assertion; posting
// through the TypedHandler is type-checked at compile time.
func ExampleRegisterTyped() {
	rt, err := mely.New(mely.Config{Cores: 2})
	if err != nil {
		log.Fatal(err)
	}

	sum := 0 // touched only under color 9: no lock needed
	add := mely.RegisterTyped(rt, "add", func(ctx *mely.TypedCtx[int]) {
		sum += ctx.Data() // ctx.Data() is an int
	})

	if err := rt.Start(); err != nil {
		log.Fatal(err)
	}
	defer rt.Close()

	for i := 1; i <= 4; i++ {
		if err := add.Post(9, i); err != nil {
			log.Fatal(err)
		}
	}
	if err := rt.Drain(context.Background()); err != nil {
		log.Fatal(err)
	}
	fmt.Println(sum)
	// Output: 10
}

// PostBatch delivers a whole batch with one lock acquisition per owning
// core — the fast path for pumps and fan-out stages.
func ExampleRuntime_PostBatch() {
	rt, err := mely.New(mely.Config{Cores: 2})
	if err != nil {
		log.Fatal(err)
	}

	var counts [3]int // slot per color: each is touched by one color only
	tally := mely.RegisterTyped(rt, "tally", func(ctx *mely.TypedCtx[int]) {
		counts[ctx.Color()] += ctx.Data()
	})

	if err := rt.Start(); err != nil {
		log.Fatal(err)
	}
	defer rt.Close()

	batch := []mely.BatchEvent{
		tally.Event(1, 10),
		tally.Event(2, 20),
		tally.Event(1, 1),
	}
	if err := rt.PostBatch(batch); err != nil {
		log.Fatal(err)
	}
	if err := rt.Drain(context.Background()); err != nil {
		log.Fatal(err)
	}
	fmt.Println(counts[1], counts[2])
	// Output: 11 20
}

// Run packages the daemon lifecycle: start, serve until the context
// ends, drain what was posted, stop.
func ExampleRuntime_Run() {
	rt, err := mely.New(mely.Config{Cores: 2})
	if err != nil {
		log.Fatal(err)
	}
	n := 0
	work := mely.RegisterTyped(rt, "work", func(ctx *mely.TypedCtx[int]) { n++ })

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- rt.Run(ctx) }()

	for i := 0; i < 100; i++ {
		if err := work.Post(3, i); err != nil {
			log.Fatal(err)
		}
	}
	cancel() // Run drains all 100 events, then stops the workers
	if err := <-done; err != nil {
		log.Fatal(err)
	}
	fmt.Println(n)
	// Output: 100
}

// Annotations steer the workstealing heuristics: WithPenalty keeps
// data-heavy handlers near their data, WithCostEstimate seeds the
// time-left worthiness accounting.
func ExampleWithPenalty() {
	rt, err := mely.New(mely.Config{Cores: 2, Policy: mely.PolicyMelyWS})
	if err != nil {
		log.Fatal(err)
	}
	_ = rt.Register("walk-large-array", func(ctx *mely.Ctx) {
		// ... touches a long-lived data set ...
	}, mely.WithPenalty(1000))
	fmt.Println("registered")
	// Output: registered
}
