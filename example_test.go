package mely_test

import (
	"context"
	"fmt"
	"log"

	"github.com/melyruntime/mely"
)

// The fundamental pattern: per-color state needs no locks because
// events of one color never run concurrently.
func Example() {
	rt, err := mely.New(mely.Config{Cores: 2})
	if err != nil {
		log.Fatal(err)
	}

	counter := 0 // touched only under color 7: no lock needed
	count := rt.Register("count", func(ctx *mely.Ctx) {
		counter += ctx.Data().(int)
	})

	if err := rt.Start(); err != nil {
		log.Fatal(err)
	}
	defer rt.Stop()

	for i := 1; i <= 4; i++ {
		if err := rt.Post(count, 7, i); err != nil {
			log.Fatal(err)
		}
	}
	if err := rt.Drain(context.Background()); err != nil {
		log.Fatal(err)
	}
	fmt.Println(counter)
	// Output: 10
}

// Handlers chain by posting follow-up events; a pipeline stays on one
// color so its stages serialize, while other colors run in parallel.
func ExampleCtx_Post() {
	rt, err := mely.New(mely.Config{Cores: 2})
	if err != nil {
		log.Fatal(err)
	}

	results := make(chan string, 1)
	var stage2 mely.Handler
	stage2 = rt.Register("stage2", func(ctx *mely.Ctx) {
		results <- ctx.Data().(string) + " world"
	})
	stage1 := rt.Register("stage1", func(ctx *mely.Ctx) {
		if err := ctx.Post(stage2, ctx.Color(), ctx.Data().(string)+","); err != nil {
			log.Fatal(err)
		}
	})

	if err := rt.Start(); err != nil {
		log.Fatal(err)
	}
	defer rt.Stop()

	if err := rt.Post(stage1, 3, "hello"); err != nil {
		log.Fatal(err)
	}
	fmt.Println(<-results)
	// Output: hello, world
}

// Annotations steer the workstealing heuristics: WithPenalty keeps
// data-heavy handlers near their data, WithCostEstimate seeds the
// time-left worthiness accounting.
func ExampleWithPenalty() {
	rt, err := mely.New(mely.Config{Cores: 2, Policy: mely.PolicyMelyWS})
	if err != nil {
		log.Fatal(err)
	}
	_ = rt.Register("walk-large-array", func(ctx *mely.Ctx) {
		// ... touches a long-lived data set ...
	}, mely.WithPenalty(1000))
	fmt.Println("registered")
	// Output: registered
}
