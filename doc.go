// Package mely is a multicore event-driven runtime based on event
// coloring, reproducing "Efficient Workstealing for Multicore
// Event-Driven Systems" (Gaud, Genevès, Lachaize, Lepers, Mottet,
// Muller, Quéma — ICDCS 2010).
//
// # Programming model
//
// Applications are sets of short, non-blocking event handlers. Each
// posted event carries a color: events of the same color execute
// serially (mutual exclusion without locks), events of different colors
// may run on different cores concurrently. A typical server colors each
// connection with its descriptor so independent clients are served in
// parallel, while shared-state handlers reuse one color to serialize.
//
//	rt, err := mely.New(mely.Config{})
//	echo := rt.Register("echo", func(ctx *mely.Ctx) {
//		fmt.Println(ctx.Data())
//	})
//	rt.Start()
//	rt.Post(echo, mely.Color(42), "hello")
//	rt.Drain(context.Background())
//	rt.Stop()
//
// # Scheduling
//
// One worker goroutine per configured core (thread-locked, and pinned
// on Linux when Config.Pin is set) drains a per-core queue of colored
// events. Load is balanced by workstealing: an idle core inspects
// victims and migrates a whole color. The stealing policy is the
// paper's contribution and is selectable via Config.Policy:
//
//   - PolicyMelyWS (default): Mely's per-color queues with the
//     locality-aware, time-left and penalty-aware heuristics;
//   - PolicyMely / PolicyMelyBaseWS / PolicyMelyTimeLeftWS /
//     PolicyMelyPenaltyWS / PolicyMelyLocalityWS: ablations;
//   - PolicyLibasync / PolicyLibasyncWS: the Libasync-smp baseline
//     (single FIFO per core, naive workstealing) for comparison.
//
// Handler execution times are profiled online (an EWMA per handler, the
// paper's section VII "future work" mode) or pinned with the
// WithCostEstimate annotation; the time-left heuristic uses them to
// steal only colors whose pending work exceeds the cost of stealing.
// WithPenalty sets the ws_penalty annotation that makes handlers with
// large, long-lived data sets unattractive to thieves.
//
// The simulated counterpart of this runtime (internal/sim) executes the
// same queue structures and policies on a modeled 8-core machine and
// regenerates every table and figure of the paper: see cmd/melybench
// and EXPERIMENTS.md.
package mely
