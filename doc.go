// Package mely is a multicore event-driven runtime based on event
// coloring, reproducing "Efficient Workstealing for Multicore
// Event-Driven Systems" (Gaud, Genevès, Lachaize, Lepers, Mottet,
// Muller, Quéma — ICDCS 2010) and growing it into a production API.
//
// # Programming model
//
// Applications are sets of short, non-blocking event handlers. Each
// posted event carries a 64-bit color: events of the same color execute
// serially (mutual exclusion without locks), events of different colors
// may run on different cores concurrently. A typical server colors each
// connection with its id — the color space is wide enough to never
// recycle — so independent clients are served in parallel, while
// shared-state handlers reuse one color to serialize.
//
//	rt, err := mely.New(mely.Config{})
//	echo := mely.RegisterTyped(rt, "echo", func(ctx *mely.TypedCtx[string]) {
//		fmt.Println(ctx.Data()) // statically a string
//	})
//	go rt.Run(ctx)                      // Start, then drain+stop when ctx ends
//	echo.Post(mely.Color(42), "hello")  // one event
//	rt.PostBatch([]mely.BatchEvent{     // a batch: one lock hop per core
//		echo.Event(7, "a"), echo.Event(8, "b"),
//	})
//
// # The v1 API
//
//   - Registration: Register takes an untyped func(*Ctx); RegisterTyped
//     layers a generically typed handler over it whose TypedCtx exposes
//     the payload without a type assertion.
//   - Posting: Post delivers one event to the core owning its color.
//     PostBatch amortizes delivery — it groups a caller batch by owning
//     core and delivers each group under a single lock acquisition with
//     a single wakeup, which is how pumps and fan-out stages should
//     post (see BenchmarkRuntimePostBatch for the measured gap).
//     Both fail with ErrStopped after shutdown.
//   - Lifecycle: Start/Drain/Stop remain for manual control; Run(ctx)
//     packages the common daemon shape (start, block until the context
//     ends, drain, stop) and Close is the idempotent io.Closer-shaped
//     immediate shutdown.
//
// # Scheduling
//
// One worker goroutine per configured core (thread-locked, and pinned
// on Linux when Config.Pin is set) drains a per-core queue of colored
// events. A sharded, lock-striped color table maps each live color to
// its owning core — colors hash onto cores with a 64-bit mix, and
// ownership moves only while a steal holds the color away from home
// (the lease re-homes once the color drains). Load is balanced by
// workstealing: an idle core inspects victims and migrates a whole
// color. The stealing policy is the paper's contribution and is
// selectable via Config.Policy:
//
//   - PolicyMelyWS (default): Mely's per-color queues with the
//     locality-aware, time-left and penalty-aware heuristics;
//   - PolicyMely / PolicyMelyBaseWS / PolicyMelyTimeLeftWS /
//     PolicyMelyPenaltyWS / PolicyMelyLocalityWS: ablations;
//   - PolicyLibasync / PolicyLibasyncWS: the Libasync-smp baseline
//     (single FIFO per core, naive workstealing) for comparison.
//
// Handler execution times are profiled online (an EWMA per handler, the
// paper's section VII "future work" mode) or pinned with the
// WithCostEstimate annotation; the time-left heuristic uses them to
// steal only colors whose pending work exceeds the cost of stealing.
// WithPenalty sets the ws_penalty annotation that makes handlers with
// large, long-lived data sets unattractive to thieves.
//
// # Batch stealing and steal throttling
//
// The paper's steal protocol migrates exactly one color per successful
// attempt; this runtime batches by default: one attempt takes up to
// half the victim's stealable colors — worthy ones first under the
// time-left heuristic — capped by Config.MaxStealColors (default 8),
// all inside a single victim-lock critical section whose color leases
// are published in one pass over the color table's stripes. The fixed
// steal costs (victim lock transfer, can_be_stolen, migration setup)
// are paid once per batch instead of once per color, the steal-side
// mirror of PostBatch; set MaxStealColors to 1 for the paper's
// single-color protocol. Stats exposes the accounting: StolenColors,
// the per-steal batch-size histogram (StealBatchHist), and the
// attempt/success counters.
//
// # Timers and color affinity
//
// PostAfter, PostAt, and PostEvery arm timers whose expiry is a normal
// event post: after the deadline the handler is posted with the given
// color and data, so the expiry callback is serialized with every other
// event of that color — idle-connection reapers, retries, and session
// expiry read per-color state with no user locking, ever. This replaces
// the time.AfterFunc+Post workaround, which burned a goroutine and an
// allocation per timer and delivered the post outside the runtime's
// scheduling (see CHANGES.md for migration guidance).
//
// Timers live on per-core hierarchical timing wheels (internal/
// timerwheel): arming, Cancel, and Reset are O(1); expiry is a batch
// harvest folded into the worker loop, and a parked worker sleeps only
// until min(park timeout, its wheel's next deadline). Config.TimerTick
// (default 1ms) is the granularity — timers fire on the first tick at
// or after their deadline — and Config.TimerWheelLevels (default 4)
// sets the hierarchy depth (64 slots per level; deadlines beyond the
// horizon cascade, so any duration is legal).
//
// Timers are color-affine: an entry is armed on the wheel of the core
// that owns its color, and when a steal or a lease re-home migrates the
// color, its pending timers migrate with it — expiry harvest stays
// core-local. The affinity is purely a performance property: a firing
// is delivered through the same ownership lease protocol as a Post, so
// the serialization guarantee holds no matter where the entry sits.
// The Timer handle is race-safe: exactly one of Cancel-returning-true
// and the firing happens (a periodic timer canceled mid-firing still
// delivers the in-flight occurrence, never another). Stats reports
// TimersFired, TimersCanceled, the armed count (TimersPending), and a
// firing-lag histogram (TimerLagHist).
//
// # Network backends
//
// internal/netpoll turns socket readiness into colored events, the
// role the paper's runtime-owned Epoll handler plays. On Linux the
// primary backend is a raw-epoll reactor (internal/epoller): one
// reactor goroutine per poller shard (netpoll.Config.PollerShards,
// default NumCPU) runs an edge-triggered EpollWait loop, harvests
// readiness in batches, and delivers each batch through PostBatch —
// the poll batch amortizes the syscall, the post batch amortizes
// queue delivery. Accept readiness posts under the accept color and
// read readiness under the connection's color, so handler code is
// scheduled and serialized exactly as if the events came from
// anywhere else, and connection count never drives goroutine count:
// ten thousand idle connections cost O(shards) goroutines. Writes go
// through Conn.Send, which gives real backpressure — bytes the kernel
// buffer rejects are queued per connection (bounded by
// MaxPendingWriteBytes) and drained on EPOLLOUT under the
// connection's color, with WriteStalls counting the stalls. On other
// platforms (or with Backend: BackendPumps) the portable pump backend
// substitutes one goroutine per listener and per connection; event
// semantics are identical — the sws parity suite asserts equal
// handler-event traces — only the scaling differs. Stats exposes the
// harvest efficiency as PollWakeups, PollEvents, and PollBatchHist.
//
// # Overload control: bounded queues and disk spill
//
// Unbounded event queues turn a burst, a hot PostEvery, or one slow
// handler into unbounded memory growth. Config.MaxQueuedEvents bounds
// the runtime-wide in-memory queue depth and Config.MaxQueuedPerColor
// bounds one color's share; with both zero (the default) nothing
// changes and nothing is paid — the admission layer is not even
// constructed. Once a bound is hit, Config.OverloadPolicy decides:
//
//	policy          external Post            handler/timer posts
//	--------------  -----------------------  ----------------------
//	OverloadReject  ErrOverloaded            admitted (never fail)
//	OverloadBlock   waits (ctx-cancelable)   admitted (never block)
//	OverloadSpill   tail spills to disk      tail spills to disk
//
// Reject (the default) sheds at the edge: external posts fail with
// ErrOverloaded (test with errors.Is) while handler continuations and
// timer firings always land — failing those would wedge the pipeline
// the bound is protecting. Block turns posters into backpressure:
// Post waits for queue space, PostContext bounds the wait with a
// context, and runtime stop releases every waiter with ErrStopped.
//
// Spill is the graceful-degradation mode, in the lineage of segmented
// disk-backed queues like timeq: when a color saturates, its queue
// TAIL moves to mmap-backed, append-only segment files under
// Config.SpillDir (internal/spillq — batch appends, whole-segment
// reclaim, a versioned header and a CRC per record; the byte layout is
// specified in docs/spillq-format.md), while the in-memory head keeps
// executing. Every further post of that color goes to the tail until
// the color drains below its low-water mark and the backlog reloads in
// strict FIFO order — so per-color ordering holds across the disk
// boundary and memory stays at the bound no matter how deep the
// backlog runs. Spilled colors stay visible to workstealing (the
// on-disk backlog counts toward steal worthiness) and a stolen color's
// disk tail follows it to the thief, because reloads deliver through
// the same ownership lease as any post. Payloads must be
// self-contained values ([]byte, string, integers, bool, float64,
// nil); events with pointerful payloads fall back to in-memory
// delivery and count in SpillErrors.
//
// The spill store can also be a durability boundary. Config.SpillSync
// picks when appended records reach stable storage (SpillSyncNone:
// only at segment seal; SpillSyncInterval: at most once per
// Config.SpillSyncEvery; SpillSyncAlways: every append batch, with
// failed batches rolled back), and Config.SpillRecover turns startup
// from delete-orphans into crash recovery: New scans SpillDir,
// truncates torn tails at the last CRC-valid record, reloads intact
// backlogs into each owning color's FIFO, and Stop keeps unconsumed
// segments for the next run. Recovery needs OverloadSpill, an explicit
// SpillDir, and the same handler-registration order across runs.
// Without SpillRecover the v1 contract holds: crash orphans are
// deleted at startup and segments at Stop.
//
// The edge cooperates instead of being policed: netpoll checks
// Runtime.Saturated and pauses a saturated connection's read readiness
// (resuming on drain, counted in ReadPauses), pushing overload into
// the peer's TCP window; its own posts ride PostEdge/PostBatchEdge,
// which bypass Reject and Block precisely because the pause is their
// backpressure. Stats exposes the whole story: the QueuedEvents and
// SpilledNow gauges, SpilledEvents/ReloadedEvents traffic,
// RejectedPosts, BlockedPosts, SpillErrors, the durability counters
// SpillSyncs/RecoveredEvents/TornRecords, and the per-color
// spill-depth histogram SpillDepthHist.
//
// Idle workers whose steal probes keep failing back off exponentially:
// after Config.IdleSpins fruitless rounds a worker parks for
// Config.StealBackoff (default 10µs), doubling per further fruitless
// round up to Config.ParkTimeout, and any success resets the streak.
// This throttles the steal storm that forms when many cores go idle
// together and hammer the same few victim locks; BackoffParks counts
// the shortened parks. A negative StealBackoff disables the backoff.
//
// The simulated counterpart of this runtime (internal/sim) executes the
// same queue structures and policies on a modeled 8-core machine and
// regenerates every table and figure of the paper: see cmd/melybench
// and EXPERIMENTS.md. (The simulator keeps the paper's color%ncores
// placement; the runtime's default placement is the 64-bit mix.)
// A one-page map of every layer — public API, scheduling core, spill
// and timer subsystems, netpoll backends, servers, and the scenario
// harness — is in docs/architecture.md.
package mely
