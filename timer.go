package mely

import (
	"fmt"
	"math"
	"time"

	"github.com/melyruntime/mely/internal/equeue"
	"github.com/melyruntime/mely/internal/obs"
	"github.com/melyruntime/mely/internal/timerwheel"
)

// Timer is the handle of a timer armed with PostAfter, PostAt, or
// PostEvery. Cancel and Reset are safe from any goroutine and race-safe
// against a concurrent expiry: exactly one of Cancel-returning-true and
// the firing happens.
//
// Timers are color-affine: the entry lives on the timing wheel of the
// core that owns the timer's color, and it migrates with the color when
// a steal or a lease re-home moves it — so expiry stays a core-local
// harvest. The affinity is a performance property, not a correctness
// one: a fired timer's event is delivered through the same ownership
// lease protocol as a Post, so the expiry handler runs under the full
// single-color serialization guarantee no matter where the wheel
// happened to be.
type Timer struct {
	r *Runtime
	e *timerwheel.Entry
}

// Cancel stops the timer. It returns true when a scheduled firing was
// averted: for a one-shot timer that is an exact-once guarantee — the
// handler will never run — while a periodic timer caught mid-expiry
// still delivers the in-flight occurrence but none after it (and
// Cancel still returns true). False means the timer had already fired
// (or was already canceled) and nothing changed.
func (t *Timer) Cancel() bool {
	if !t.e.Cancel() {
		return false
	}
	t.r.timersCanceled.Add(1)
	return true
}

// Reset reschedules a still-armed timer to fire d from now (a periodic
// timer keeps its period from the new deadline). It returns false — and
// reschedules nothing — when the timer already fired, is firing, or was
// canceled. On false, a one-shot timer is spent (or canceled): re-arm
// with a fresh PostAfter if another firing is wanted. A periodic timer
// returning false needs nothing: unless it was canceled it is mid-
// firing and re-arms itself — arming a replacement would run two
// series. This is the cheap keep-alive path: resetting an
// idle-connection timeout on every request is one O(1) wheel operation,
// no allocation.
func (t *Timer) Reset(d time.Duration) bool {
	if d < 0 {
		d = 0
	}
	if !t.e.Reschedule(t.r.now() + d.Nanoseconds()) {
		return false
	}
	if w := t.e.CurrentWheel(); w != nil {
		t.r.cores[w.Owner].unpark()
	}
	return true
}

// Fired reports whether a one-shot timer has delivered its event (it
// keeps reporting false for canceled timers and for periodic timers,
// which never retire).
func (t *Timer) Fired() bool { return t.e.State() == timerwheel.StateFired }

// PostAfter arms a one-shot timer: after at least d, handler h is
// posted with the given color and data, exactly as if Post had been
// called at the deadline — same serialization, same lease routing, same
// Stats accounting — with firing resolution bounded by
// Config.TimerTick. It is the runtime-native replacement for
// time.AfterFunc + Post: no goroutine per timer, no allocation per
// firing, and the expiry handler is color-serialized with every other
// event of that color. After shutdown it fails with ErrStopped.
func (r *Runtime) PostAfter(h Handler, color Color, d time.Duration, data any) (*Timer, error) {
	return r.postTimer(h, color, r.afterDeadline(d), 0, data, 0, 0)
}

// PostAt arms a one-shot timer for an absolute wall-clock deadline
// (clamped to now when already past).
func (r *Runtime) PostAt(h Handler, color Color, at time.Time, data any) (*Timer, error) {
	return r.postTimer(h, color, r.afterDeadline(time.Until(at)), 0, data, 0, 0)
}

// PostEvery arms a periodic timer firing every interval (first firing
// one interval from now). Occurrences missed while the system is
// saturated or suspended are skipped, not bursted: the next deadline
// after a late firing is pulled forward to now+every. The interval must
// be positive.
func (r *Runtime) PostEvery(h Handler, color Color, every time.Duration, data any) (*Timer, error) {
	if every <= 0 {
		return nil, fmt.Errorf("mely: non-positive PostEvery interval %v", every)
	}
	return r.postTimer(h, color, r.afterDeadline(every), every.Nanoseconds(), data, 0, 0)
}

// PostAfter arms a one-shot timer from inside a handler (see
// Runtime.PostAfter). The fired event inherits the arming event's
// causal lineage: with tracing on, the firing appears as a child hop of
// this handler's span rather than founding a new trace.
func (ctx *Ctx) PostAfter(h Handler, color Color, d time.Duration, data any) (*Timer, error) {
	return ctx.r.postTimer(h, color, ctx.r.afterDeadline(d), 0, data, ctx.ev.TraceID, ctx.ev.SpanID)
}

// now is the runtime's monotonic timer clock: nanoseconds since the
// runtime was built. One epoch for every core's wheel, so deadlines
// compare across wheels and migration never rebases them.
func (r *Runtime) now() int64 { return time.Since(r.epoch).Nanoseconds() }

func (r *Runtime) afterDeadline(d time.Duration) int64 {
	if d < 0 {
		d = 0
	}
	return r.now() + d.Nanoseconds()
}

func (r *Runtime) postTimer(h Handler, color Color, when, period int64, data any, ptrace, pspan uint64) (*Timer, error) {
	if r.stopped.Load() {
		return nil, ErrStopped
	}
	hs := *r.handlers.Load()
	idx := int(h.id) - 1
	if idx < 0 || idx >= len(hs) {
		return nil, unknownHandlerError(h)
	}
	e := timerwheel.NewEntry(equeue.Color(color), int32(idx), data, when, period)
	e.TraceID, e.SpanID = ptrace, pspan
	r.armTimer(e)
	return &Timer{r: r, e: e}, nil
}

// armTimer links an entry onto the wheel of its color's current owner
// (best effort: a concurrent steal may move the color before the entry
// lands, and the fire-time delivery re-resolves ownership anyway).
func (r *Runtime) armTimer(e *timerwheel.Entry) {
	c := r.cores[r.table.OwnerHint(e.Color)]
	if c.wheel.Add(e) {
		// The wheel's earliest deadline moved up; a parked owner is
		// sleeping against the old bound.
		c.unpark()
	}
}

// harvestTimers expires the core's due timers and posts their events.
// It is the worker-loop hook: one atomic load when nothing is due.
// It reports how many timers fired.
func (r *Runtime) harvestTimers(c *rcore) int {
	nd := c.wheel.NextDue()
	if nd == math.MaxInt64 {
		return 0 // no timers anywhere: skip even the clock read
	}
	now := r.now()
	if nd > now {
		return 0
	}
	c.timerBuf = c.wheel.Advance(now, c.timerBuf[:0])
	for _, e := range c.timerBuf {
		r.fireTimer(c, e, now)
	}
	fired := len(c.timerBuf)
	for i := range c.timerBuf {
		c.timerBuf[i] = nil // release payload references promptly
	}
	return fired
}

// fireTimer turns one harvested entry into a posted event, delivered
// through the normal ownership lease path (enqueue) so the expiry
// handler is serialized with every other event of its color. Periodic
// entries re-arm on the color's current owner.
func (r *Runtime) fireTimer(c *rcore, e *timerwheel.Entry, now int64) {
	lag := now - e.When
	c.stats.timersFired.Add(1)
	c.stats.timerLagHist[timerLagBucket(lag)].Add(1)

	// The handler id was validated at arm time and handlers never
	// unregister, so buildEvent cannot fail here. The fired event
	// inherits the arming span's lineage (zeros when armed outside a
	// handler, making the firing a trace root).
	ev, err := r.buildEvent(*r.handlers.Load(), Handler{id: e.Handler + 1}, Color(e.Color), e.Data, e.TraceID, e.SpanID)
	if err != nil {
		return
	}
	if c.ring != nil {
		// Recorded after buildEvent so the firing instant carries the
		// fired event's ids: melytrace treats it as the hop's enqueue
		// timestamp for exact queue-delay measurement.
		c.ring.AppendFlow(obs.KindTimerFire, now, lag, uint64(e.Color), 1, ev.TraceID, ev.SpanID, ev.ParentSpan)
	}
	if a := r.adm; a != nil {
		// Timer firings are internal continuations: never rejected or
		// blocked, but a spilling color's FIFO discipline still routes
		// the event to the disk tail.
		if a.admitInternal(equeue.Color(e.Color)) == routeDisk {
			r.spillBuilt(ev)
		} else {
			r.pending.Add(1)
			r.enqueue(ev)
		}
	} else {
		r.pending.Add(1)
		r.enqueue(ev)
	}

	if e.Period > 0 {
		next := e.When + e.Period
		if next <= now {
			next = now + e.Period // skip missed occurrences, don't burst
		}
		if e.Rearm(next) {
			r.armTimer(e)
		}
	} else {
		e.FinishFire()
	}
}

// migrateTimersOnSteal moves the pending timer entries of freshly
// stolen colors from the victim's wheel onto the thief's — the timer
// half of a color migration, so expiry harvest stays core-local. Runs
// outside both core locks; entries armed concurrently against the old
// owner are routed correctly at fire time regardless.
func (r *Runtime) migrateTimersOnSteal(c, v *rcore, colors []equeue.Color) {
	moved := false
	for _, col := range colors {
		if v.wheel.HasColor(col) {
			moved = true
			break
		}
	}
	if !moved {
		return
	}
	c.entryBuf = v.wheel.ExtractColors(colors, c.entryBuf[:0])
	if c.wheel.AdoptAll(c.entryBuf) {
		c.unpark()
	}
	for i := range c.entryBuf {
		c.entryBuf[i] = nil
	}
}

// migrateTimersOnReHome moves a re-homed color's pending timers from
// the expiring-lease core onto the color's hash home. Called under the
// leased core's lock by whichever poster trips the lease expiry (the
// wheel mutexes are leaf locks, acquired one at a time), so it must not
// touch the core's worker-owned scratch buffers; the allocation only
// happens when the re-homed color actually has timers pending.
func (r *Runtime) migrateTimersOnReHome(from *rcore, color equeue.Color, home int) {
	if !from.wheel.HasColor(color) {
		return
	}
	h := r.cores[home]
	if h.wheel.AdoptAll(from.wheel.ExtractColor(color, nil)) {
		h.unpark()
	}
}

// timerParkBound folds the wheel's next deadline into a park duration:
// sleep no longer than the next local expiry. Returns 0 when a timer is
// already due (don't park at all).
func (r *Runtime) timerParkBound(c *rcore, d time.Duration) time.Duration {
	nd := c.wheel.NextDue()
	if nd == math.MaxInt64 {
		return d
	}
	until := nd - r.now()
	if until <= 0 {
		return 0
	}
	if time.Duration(until) < d {
		return time.Duration(until)
	}
	return d
}
