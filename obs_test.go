package mely

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http/httptest"
	"reflect"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/melyruntime/mely/internal/obs"
)

// obsStress drives a bounded, spilling, imbalanced load through r so
// one run exercises every observability surface at once: steals (all
// colors home on core 0), spills (MaxQueuedEvents is tiny), sampled
// latency (callers pass ObsSampleRate 1), and the flight recorder.
func obsStress(t *testing.T, r *Runtime, events int) {
	t.Helper()
	var wg sync.WaitGroup
	wg.Add(events)
	h := r.Register("spin", func(ctx *Ctx) {
		deadline := time.Now().Add(50 * time.Microsecond)
		for time.Now().Before(deadline) {
		}
		wg.Done()
	}, WithCostEstimate(50*time.Microsecond))
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	cols := colorsOn(r, 0, 32)
	for i := 0; i < events; i++ {
		if err := r.Post(h, cols[i%len(cols)], i); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := r.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

func obsStressConfig() Config {
	return Config{
		Cores:           4,
		MaxQueuedEvents: 64,
		OverloadPolicy:  OverloadSpill,
		ObsSampleRate:   1,
	}
}

// TestWriteMetricsExposition scrapes a loaded runtime and checks the
// exposition structurally — every family renders # HELP then # TYPE
// then only its own samples, no family twice — and numerically against
// the Stats snapshot the same moment should produce.
func TestWriteMetricsExposition(t *testing.T) {
	r := newRuntime(t, obsStressConfig())
	defer r.Close()
	obsStress(t, r, 800)

	var buf bytes.Buffer
	if err := r.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()

	// Structural walk: families are contiguous and typed before sampled.
	seen := map[string]bool{}
	var family string
	for _, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		switch {
		case strings.HasPrefix(line, "# HELP "):
			name := strings.Fields(line)[2]
			if seen[name] {
				t.Fatalf("family %s opened twice", name)
			}
			seen[name] = true
			family = name
		case strings.HasPrefix(line, "# TYPE "):
			f := strings.Fields(line)
			if f[2] != family {
				t.Fatalf("TYPE %s outside its family (current %s)", f[2], family)
			}
			switch f[3] {
			case "counter", "gauge", "histogram":
			default:
				t.Fatalf("family %s has unknown type %q", family, f[3])
			}
		default:
			if family == "" || !strings.HasPrefix(line, family) {
				t.Fatalf("sample %q outside family %s", line, family)
			}
		}
	}
	for name := range seen {
		if !strings.HasPrefix(name, "mely_") {
			t.Errorf("family %s not in the mely_ namespace", name)
		}
	}

	samples, err := obs.ParseExposition(text)
	if err != nil {
		t.Fatalf("exposition does not parse: %v\n%s", err, text)
	}
	st := r.Stats()
	var events float64
	for i := range st.Cores {
		events += samples[`mely_events_total{core="`+strconv.Itoa(i)+`"}`]
	}
	if want := float64(st.Total().Events); events != want {
		t.Errorf("mely_events_total sums to %v, Stats says %v", events, want)
	}
	if samples["mely_spilled_events_total"] == 0 {
		t.Error("bounded burst did not spill (mely_spilled_events_total = 0)")
	}
	if _, ok := obs.HistogramQuantile(samples, "mely_queue_delay_seconds", 0.99); !ok {
		t.Error("no mely_queue_delay_seconds histogram despite ObsSampleRate 1")
	}
	if _, ok := obs.HistogramQuantile(samples, "mely_exec_time_seconds", 0.99); !ok {
		t.Error("no mely_exec_time_seconds histogram despite ObsSampleRate 1")
	}
}

// TestMetricsMonotonicAcrossScrapes is the exposition-level mirror of
// TestStatsMonotonicity: between bursts of a steal/spill stress run,
// no counter-suffixed series may decrease or disappear. Run under
// -race this also shakes the sampled hot-path instrumentation.
func TestMetricsMonotonicAcrossScrapes(t *testing.T) {
	r := newRuntime(t, obsStressConfig())
	defer r.Close()
	var wg sync.WaitGroup
	h := r.Register("spin", func(ctx *Ctx) {
		deadline := time.Now().Add(20 * time.Microsecond)
		for time.Now().Before(deadline) {
		}
		wg.Done()
	}, WithCostEstimate(20*time.Microsecond))
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	scrape := func() map[string]float64 {
		var buf bytes.Buffer
		if err := r.WriteMetrics(&buf); err != nil {
			t.Fatal(err)
		}
		samples, err := obs.ParseExposition(buf.String())
		if err != nil {
			t.Fatal(err)
		}
		return samples
	}
	cols := colorsOn(r, 0, 16)
	prev := scrape()
	for round := 0; round < 4; round++ {
		wg.Add(300)
		for i := 0; i < 300; i++ {
			if err := r.Post(h, cols[i%len(cols)], i); err != nil {
				t.Fatal(err)
			}
		}
		wg.Wait()
		cur := scrape()
		if v := obs.MonotonicViolations(prev, cur); v != nil {
			t.Fatalf("round %d: %v", round, v)
		}
		prev = cur
	}
}

// TestDumpTraceFlightRecorder: a stressed runtime's dump must be a
// valid Chrome trace-event array carrying exec spans (named after the
// handler), steal-batch spans, spill instants, and per-track metadata.
func TestDumpTraceFlightRecorder(t *testing.T) {
	r := newRuntime(t, obsStressConfig())
	defer r.Close()
	obsStress(t, r, 800)
	if st := r.Stats().Total(); st.Steals == 0 {
		t.Skip("no steals this run; steal spans unverifiable")
	}

	var buf bytes.Buffer
	if err := r.DumpTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var out []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("dump is not a JSON array: %v", err)
	}
	var execSpans, stealSpans, spills, meta int
	for _, e := range out {
		name, _ := e["name"].(string)
		switch {
		case name == "spin" && e["ph"] == "X":
			execSpans++
		case strings.HasPrefix(name, "STEAL ×"):
			stealSpans++
		case name == "spill":
			spills++
		case name == "thread_name":
			meta++
		}
	}
	if execSpans == 0 {
		t.Error("no exec spans named after the handler")
	}
	if stealSpans == 0 {
		t.Error("steals happened but no steal spans survived in the ring")
	}
	if spills == 0 {
		t.Error("burst spilled but no spill instants on the aux track")
	}
	// One track per core plus the aux track.
	if want := len(r.cores) + 1; meta != want {
		t.Errorf("thread_name metadata count = %d, want %d", meta, want)
	}
}

// TestObsMuxServesRuntime mounts the real runtime behind obs.NewMux and
// exercises the HTTP surface servers get from -debug-addr.
func TestObsMuxServesRuntime(t *testing.T) {
	r := newRuntime(t, obsStressConfig())
	defer r.Close()
	obsStress(t, r, 400)

	mux := obs.NewMux(obs.MuxConfig{Metrics: r.WriteMetrics, Trace: r.DumpTrace})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	get := func(path string) (string, string) {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: %d", path, resp.StatusCode)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	metrics, ctype := get("/metrics")
	if !strings.Contains(ctype, "version=0.0.4") {
		t.Errorf("/metrics content type = %q", ctype)
	}
	if _, err := obs.ParseExposition(metrics); err != nil {
		t.Errorf("/metrics body does not parse: %v", err)
	}
	// Within the scrape-cache window a second scrape is byte-identical:
	// aggressive scrapers share one Stats walk.
	again, _ := get("/metrics")
	if again != metrics {
		t.Error("second scrape inside the cache window differs from the first")
	}

	trace, ctype := get("/debug/trace")
	if ctype != "application/json" {
		t.Errorf("/debug/trace content type = %q", ctype)
	}
	var arr []any
	if err := json.Unmarshal([]byte(trace), &arr); err != nil {
		t.Errorf("/debug/trace is not a JSON array: %v", err)
	}

	if body, _ := get("/debug/vars"); !strings.Contains(body, "memstats") {
		t.Error("/debug/vars missing expvar memstats")
	}
	get("/debug/pprof/cmdline")
}

// TestObsSamplingRateOne: at ObsSampleRate 1 every executed event is
// sampled, so the histogram counts tie out exactly against Events and
// the top-K table attributes every sample.
func TestObsSamplingRateOne(t *testing.T) {
	r := startRuntime(t, Config{Cores: 1, ObsSampleRate: 1})
	var wg sync.WaitGroup
	const n = 500
	wg.Add(n)
	h := r.Register("work", func(ctx *Ctx) { wg.Done() })
	for i := 0; i < n; i++ {
		if err := r.Post(h, Color(i%3), i); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	drain(t, r)
	st := r.Stats().Total()
	if st.Events != n {
		t.Fatalf("events = %d, want %d", st.Events, n)
	}
	if got := st.QueueDelayHist.Count(); got != n {
		t.Errorf("queue-delay samples = %d, want %d (rate 1 samples everything)", got, n)
	}
	if got := st.ExecTimeHist.Count(); got != n {
		t.Errorf("exec-time samples = %d, want %d", got, n)
	}
	if q := st.QueueDelayHist.Quantile(0.99); q <= 0 || q > time.Minute {
		t.Errorf("p99 queue delay = %v, want a sane positive duration", q)
	}
	if len(st.TopColorDelays) != 3 {
		t.Fatalf("top-K rows = %d, want 3 (one per posted color)", len(st.TopColorDelays))
	}
	var attributed int64
	for _, cd := range st.TopColorDelays {
		attributed += cd.Samples
	}
	if attributed != n {
		t.Errorf("attributed samples = %d, want %d (3 colors fit in top-%d)", attributed, n, ColorTopK)
	}
}

// TestObsDisabled: negative knobs must shut both pillars off — no
// samples, no attribution, and an empty (but valid) trace dump.
func TestObsDisabled(t *testing.T) {
	r := startRuntime(t, Config{Cores: 2, ObsSampleRate: -1, TraceRing: -1})
	var wg sync.WaitGroup
	wg.Add(100)
	h := r.Register("work", func(ctx *Ctx) { wg.Done() })
	for i := 0; i < 100; i++ {
		if err := r.Post(h, Color(i), i); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	drain(t, r)
	st := r.Stats().Total()
	if st.QueueDelayHist.Count() != 0 || st.ExecTimeHist.Count() != 0 {
		t.Error("latency samples recorded despite ObsSampleRate -1")
	}
	if len(st.TopColorDelays) != 0 {
		t.Error("per-color attribution recorded despite ObsSampleRate -1")
	}
	var buf bytes.Buffer
	if err := r.DumpTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(buf.String()); got != "[]" {
		t.Errorf("disabled-recorder dump = %q, want empty JSON array", got)
	}
	// Metrics still render (zero-valued): the exposition surface does
	// not depend on the sampling knobs.
	buf.Reset()
	if err := r.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := obs.ParseExposition(buf.String()); err != nil {
		t.Errorf("exposition with obs disabled does not parse: %v", err)
	}
}

// TestStatsTotalAggregatesEveryField is the satellite-b audit, made
// permanent: fill every numeric leaf of two per-core snapshots with
// distinct values via reflection and require Total() to reflect each
// one. A future CoreStats field that Total() drops fails here with the
// field's name; a field of a kind the walk doesn't know fails asking
// for the guard to be extended.
func TestStatsTotalAggregatesEveryField(t *testing.T) {
	fill := func(cs *CoreStats, mult int64) {
		seq := int64(0)
		var walk func(path string, v reflect.Value)
		walk = func(path string, v reflect.Value) {
			switch v.Kind() {
			case reflect.Int, reflect.Int64:
				seq++
				v.SetInt(seq * mult)
			case reflect.Array:
				for i := 0; i < v.Len(); i++ {
					walk(path, v.Index(i))
				}
			case reflect.Struct:
				for i := 0; i < v.NumField(); i++ {
					walk(path+"."+v.Type().Field(i).Name, v.Field(i))
				}
			case reflect.Slice:
				// TopColorDelays: one row for a shared color so Total()
				// must fold the cores' rows together.
				seq++
				v.Set(reflect.ValueOf([]ColorDelay{
					{Color: 7, Samples: seq * mult, Delay: time.Duration(seq * mult)},
				}))
			default:
				t.Fatalf("CoreStats field %s has kind %v: extend this guard "+
					"AND Stats.Total before shipping it", path, v.Kind())
			}
		}
		walk("", reflect.ValueOf(cs).Elem())
	}
	s := Stats{Cores: make([]CoreStats, 2)}
	fill(&s.Cores[0], 1)
	fill(&s.Cores[1], 2)
	total := s.Total()

	seq := int64(0)
	var check func(path string, v reflect.Value)
	check = func(path string, v reflect.Value) {
		switch v.Kind() {
		case reflect.Int, reflect.Int64:
			seq++
			if v.Int() != 3*seq {
				t.Errorf("Total() dropped or miscounted %s: got %d, want %d",
					path, v.Int(), 3*seq)
			}
		case reflect.Array:
			for i := 0; i < v.Len(); i++ {
				walkIndex := path + "[" + strconv.Itoa(i) + "]"
				check(walkIndex, v.Index(i))
			}
		case reflect.Struct:
			for i := 0; i < v.NumField(); i++ {
				check(path+"."+v.Type().Field(i).Name, v.Field(i))
			}
		case reflect.Slice:
			seq++
			rows := v.Interface().([]ColorDelay)
			if len(rows) != 1 || rows[0].Color != 7 ||
				rows[0].Samples != 3*seq || rows[0].Delay != time.Duration(3*seq) {
				t.Errorf("Total() did not merge %s: %+v (want one color-7 row with %d samples)",
					path, rows, 3*seq)
			}
		}
	}
	check("", reflect.ValueOf(total))
}
