package mely

import (
	"github.com/melyruntime/mely/internal/equeue"
)

// BatchEvent is one entry of a PostBatch call.
type BatchEvent struct {
	Handler Handler
	Color   Color
	Data    any
}

// PostBatch posts a batch of events amortizing the per-event delivery
// work: events are materialized in one slab, each distinct color's
// owner is resolved once, the batch is grouped by owning core, and
// every group is delivered under a single acquisition of that core's
// lock with one wakeup per core instead of one per event. This is the
// hot-path producer API for servers that accumulate work (a network
// pump draining a readiness list, a pipeline stage emitting fan-out) —
// see BenchmarkRuntimePostBatch for the 64-event/8-core acceptance
// numbers.
//
// Semantics match per-event Post exactly: events of one color are
// delivered in batch order and the ownership lease protocol (steal
// retry, re-home on drain) is honored per event. Ordering between
// different colors of one batch is unspecified, as it already is
// between concurrent posters. If any entry names an unknown handler the
// whole batch is rejected before anything is enqueued. After shutdown
// PostBatch fails with ErrStopped.
//
// On a bounded runtime (Config.MaxQueuedEvents and friends) admission
// applies per event: an ErrOverloaded rejection or a Block-policy wait
// can therefore strike mid-batch, returning with the EARLIER entries
// already posted — only the unknown-handler check stays all-or-nothing.
// Batch producers that need atomicity against overload should check
// Saturated first or use PostBatchEdge where the edge-backpressure
// contract applies.
func (r *Runtime) PostBatch(batch []BatchEvent) error {
	return r.postBatch(batch, true, 0, 0)
}

func (r *Runtime) postBatch(batch []BatchEvent, external bool, ptrace, pspan uint64) error {
	n := len(batch)
	if n == 0 {
		return nil
	}
	if r.stopped.Load() {
		return ErrStopped
	}
	hs := *r.handlers.Load()
	if r.adm != nil {
		// Bounded runtimes take the per-event path: admission is a
		// per-color decision (a spilling color's entries must hit the
		// disk tail in batch order while its neighbors go to memory),
		// so the one-lock-per-core delivery does not apply. Unknown
		// handlers still reject the whole batch before anything is
		// enqueued; an overload rejection mid-batch, however, returns
		// with the earlier entries already posted — bounded producers
		// that need all-or-nothing should check Saturated first.
		for _, be := range batch {
			if idx := int(be.Handler.id) - 1; idx < 0 || idx >= len(hs) {
				return unknownHandlerError(be.Handler)
			}
		}
		for _, be := range batch {
			if err := r.post(nil, be.Handler, be.Color, be.Data, external, ptrace, pspan); err != nil {
				return err
			}
		}
		return nil
	}

	// One slab for the whole batch instead of n pool hits. Slab events
	// are marked so execution never pools them (an interior pointer
	// would pin the whole slab); the slab is garbage as soon as its
	// last event retires. Until the delivery loop below nothing is
	// published, so a bad entry mid-build rejects the batch atomically
	// with no unwinding (the slab is simply dropped). Batches are
	// typically handler-homogeneous, so the profiled cost and effective
	// penalty are re-priced only when the handler changes.
	slab := make([]equeue.Event, n)
	var (
		lastID   int32 = -1 // impossible id: the first entry always validates
		lastCost int64
		lastPen  int32
	)
	s := r.scratch.Get().(*batchScratch)
	s.prepare(n, len(r.cores))
	var nextSpan uint64
	if r.traceOn {
		// One atomic for the whole batch: reserve a block of span ids
		// and hand them out sequentially (ids need only be unique per
		// runtime, not dense in post order across posters).
		nextSpan = r.traceSeq.Add(uint64(n)) - uint64(n) + 1
	}
	// With no color deviated anywhere, Owner == Hash for every color:
	// resolution is pure math and the color→owner memo is unnecessary
	// (grouping by Hash is deterministic, so one color still cannot
	// split across groups). One atomic load, checked once per batch.
	allHome := !r.table.AnyDeviated()
	for i, be := range batch {
		if be.Handler.id != lastID {
			idx := int(be.Handler.id) - 1
			if idx < 0 || idx >= len(hs) {
				r.scratch.Put(s)
				return unknownHandlerError(be.Handler)
			}
			lastID = be.Handler.id
			lastCost = r.estimate(int32(idx))
			lastPen = r.pol.EffectivePenalty(hs[idx].penalty)
		}
		ev := &slab[i]
		ev.Handler = equeue.HandlerID(be.Handler.id - 1)
		ev.Color = equeue.Color(be.Color)
		ev.Cost = lastCost
		ev.Penalty = lastPen
		ev.Slab = true
		ev.Data = be.Data
		if r.obsOn && r.obsSeq.Add(1)&r.obsMask == 0 {
			ev.PostNanos = r.now()
		}
		if r.traceOn {
			ev.SpanID = nextSpan
			if ptrace != 0 {
				ev.TraceID, ev.ParentSpan = ptrace, pspan
			} else {
				ev.TraceID = nextSpan // each external batch entry founds its own trace
			}
			nextSpan++
		}

		// Group by owning core without moving events: per-core index
		// chains in batch order. The owner is resolved once per
		// DISTINCT color — never twice — so the events of one color
		// always land in the same group and cannot be reordered by a
		// steal racing the resolution pass (a second read could
		// disagree with the first and split the color across groups).
		var o int32
		if allHome {
			o = int32(r.table.Hash(ev.Color))
		} else {
			var ok bool
			o, ok = s.lookup(be.Color)
			if !ok {
				o = int32(r.table.OwnerHint(ev.Color))
				s.insert(be.Color, o)
			}
		}
		s.next[i] = -1
		if s.heads[o] < 0 {
			s.heads[o] = int32(i)
		} else {
			s.next[s.tails[o]] = int32(i)
		}
		s.tails[o] = int32(i)
	}
	r.pending.Add(int64(n))

	// Deliver each core's group under one lock acquisition. Events
	// whose color moved (stolen or re-homed) between resolution and
	// delivery fall back to the per-event retry loop afterwards, in
	// batch order.
	var retries []*equeue.Event
	for core, head := range s.heads {
		if head >= 0 {
			retries = r.deliverGroup(core, slab, s.next, head, retries)
		}
	}
	r.scratch.Put(s)
	for _, ev := range retries {
		r.enqueue(ev)
	}
	return nil
}

// batchScratch is the reusable working memory of one PostBatch call:
// the per-core chain heads/tails, the next-index links, and a small
// generation-stamped open-addressing table memoizing color→owner for
// the resolution pass (a map costs ~3x as much per event). Pooled per
// runtime; safe because each call takes one exclusively.
type batchScratch struct {
	next  []int32
	heads []int32
	tails []int32

	slotColor []Color
	slotOwner []int32
	slotGen   []uint32
	gen       uint32
	mask      uint32
}

func (s *batchScratch) prepare(n, ncores int) {
	if cap(s.next) < n {
		s.next = make([]int32, n)
	}
	s.next = s.next[:n]
	if cap(s.heads) < ncores {
		s.heads = make([]int32, ncores)
		s.tails = make([]int32, ncores)
	}
	s.heads = s.heads[:ncores]
	s.tails = s.tails[:ncores]
	for i := range s.heads {
		s.heads[i] = -1
	}
	// Size the memo at >= 2n slots (power of two) so probes stay short.
	want := 16
	for want < 2*n {
		want *= 2
	}
	if len(s.slotColor) < want {
		s.slotColor = make([]Color, want)
		s.slotOwner = make([]int32, want)
		s.slotGen = make([]uint32, want)
		s.gen = 0
	}
	s.mask = uint32(len(s.slotColor) - 1)
	s.gen++
	if s.gen == 0 { // generation wrapped: stamp everything stale
		for i := range s.slotGen {
			s.slotGen[i] = 0
		}
		s.gen = 1
	}
}

func (s *batchScratch) slot(c Color) uint32 {
	// Fibonacci hashing over the high bits; colors are arbitrary 64-bit
	// values, often sequential.
	return uint32((uint64(c)*0x9E3779B97F4A7C15)>>33) & s.mask
}

func (s *batchScratch) lookup(c Color) (int32, bool) {
	for i := s.slot(c); ; i = (i + 1) & s.mask {
		if s.slotGen[i] != s.gen {
			return 0, false
		}
		if s.slotColor[i] == c {
			return s.slotOwner[i], true
		}
	}
}

func (s *batchScratch) insert(c Color, owner int32) {
	for i := s.slot(c); ; i = (i + 1) & s.mask {
		if s.slotGen[i] != s.gen {
			s.slotGen[i] = s.gen
			s.slotColor[i] = c
			s.slotOwner[i] = owner
			return
		}
	}
}

// deliverGroup pushes a same-owner chain of events onto core owner
// under one lock acquisition, returning the events that must be
// re-routed (appended to retries) because their color's lease moved.
// Each delivery step is deliverLocked — the same lease state machine
// the per-event path runs.
func (r *Runtime) deliverGroup(owner int, slab []equeue.Event, next []int32, head int32, retries []*equeue.Event) []*equeue.Event {
	c := r.cores[owner]
	delivered := 0
	// One-entry positive cache: chains interleave colors, but
	// same-color bursts are common and each table check is a stripe
	// hop. Caching only successes is safe — while we hold c.lock a
	// delivered color cannot be stolen or drained, so a re-check would
	// succeed again; it is purely a cost.
	var (
		lastCol   equeue.Color
		lastCQ    *equeue.ColorQueue
		haveColor bool
		// failed colors, by contrast, MUST divert all their later
		// events: a concurrent re-home (made under the leased core's
		// lock, not ours) could make a fresh check pass for a later
		// event while an earlier one still waits in retries — breaking
		// per-color batch order. Rarely non-empty; linear scan.
		failed []equeue.Color
	)
	c.lock.Lock()
	if c.mely != nil && r.pol.TimeLeft {
		c.mely.SetStealCost(r.stealMon.Estimate())
	}
	for i := head; i >= 0; i = next[i] {
		ev := &slab[i]
		if haveColor && ev.Color == lastCol {
			if c.list != nil {
				c.list.PushBack(ev)
			} else {
				if c.mely.Push(lastCQ, ev) {
					c.stats.colorQueueChurns.Add(1)
				}
			}
			delivered++
			continue
		}
		diverted := false
		for _, f := range failed {
			if f == ev.Color {
				diverted = true
				break
			}
		}
		if diverted {
			retries = append(retries, ev)
			continue
		}
		cq, ok := r.deliverLocked(c, owner, ev)
		if !ok {
			haveColor = false
			failed = append(failed, ev.Color)
			retries = append(retries, ev)
			continue
		}
		lastCol, lastCQ, haveColor = ev.Color, cq, true
		delivered++
	}
	if c.list != nil {
		c.qlen.Store(int32(c.list.Len()))
	} else {
		c.qlen.Store(int32(c.mely.Len()))
		c.stealLen.Store(int32(c.mely.Stealing().Len()))
	}
	c.syncDiskLen()
	if delivered > 0 {
		c.stats.postedHere.Add(int64(delivered))
		c.stats.batchedEvents.Add(int64(delivered))
	}
	c.lock.Unlock()
	if delivered > 0 {
		c.unpark()
	}
	return retries
}

// PostBatch posts a batch from inside a handler (see Runtime.PostBatch).
// Like Ctx.Post, it is an internal continuation: never rejected or
// blocked by an overload bound. With tracing on, every entry of the
// batch becomes a child span of the posting handler's event.
func (ctx *Ctx) PostBatch(batch []BatchEvent) error {
	return ctx.r.postBatch(batch, false, ctx.ev.TraceID, ctx.ev.SpanID)
}
