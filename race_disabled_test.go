//go:build !race

package mely

const raceEnabled = false
