package mely

import (
	"bytes"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/melyruntime/mely/internal/obs"
)

// hopIDs captures the causal identifiers a handler observed, keyed by
// a test-chosen hop name, so a test can assert the exact parent→child
// structure the runtime stamped.
type hopIDs struct {
	mu     sync.Mutex
	trace  map[string]uint64
	span   map[string]uint64
	parent map[string]uint64
}

func newHopIDs() *hopIDs {
	return &hopIDs{
		trace:  map[string]uint64{},
		span:   map[string]uint64{},
		parent: map[string]uint64{},
	}
}

func (h *hopIDs) record(name string, ctx *Ctx) {
	h.mu.Lock()
	h.trace[name] = ctx.TraceID()
	h.span[name] = ctx.SpanID()
	h.parent[name] = ctx.ev.ParentSpan
	h.mu.Unlock()
}

// TestFlowMultiHopChain is the tentpole acceptance test: one request
// crossing every hop kind — ingress post → handler-derived post →
// timer firing → spill+reload → final post — must carry a single trace
// id end to end, and the flight-recorder dump must reconstruct the
// same five-hop chain through obs.FlowIndex.
//
// Spill leg mechanics: a blocker handler parks spillColor's home
// worker, so the blocker's event plus one filler hold the per-color
// bound (noteExec runs after the handler returns) and the next post of
// that color spills and marks the color's tail as on disk. The chain's
// fourth hop then posts into the spilling color from a handler,
// landing on disk with its parent's lineage; releasing the blocker
// drains the color, reloads the tail, and lets the chain finish.
func TestFlowMultiHopChain(t *testing.T) {
	r := startRuntime(t, Config{
		Cores:             2,
		MaxQueuedPerColor: 2,
		OverloadPolicy:    OverloadSpill,
		SpillDir:          t.TempDir(),
		ObsSampleRate:     1,
	})
	ids := newHopIDs()
	release := make(chan struct{})
	blocked := make(chan struct{})
	done := make(chan struct{})

	spillColor := colorsOn(r, 0, 1)[0]
	free := colorsOn(r, 1, 4)

	hBlock := r.Register("block", func(ctx *Ctx) { close(blocked); <-release })
	hFill := r.Register("fill", func(ctx *Ctx) {})
	h5 := r.Register("leaf", func(ctx *Ctx) { ids.record("leaf", ctx); close(done) })
	h4 := r.Register("spillhop", func(ctx *Ctx) {
		ids.record("spillhop", ctx)
		if err := ctx.Post(h5, free[3], nil); err != nil {
			t.Error(err)
		}
	})
	h3 := r.Register("timerhop", func(ctx *Ctx) {
		ids.record("timerhop", ctx)
		if err := ctx.Post(h4, spillColor, nil); err != nil {
			t.Error(err)
		}
	})
	h2 := r.Register("deriver", func(ctx *Ctx) {
		ids.record("deriver", ctx)
		if _, err := ctx.PostAfter(h3, free[2], time.Millisecond, nil); err != nil {
			t.Error(err)
		}
	})
	h1 := r.Register("ingress", func(ctx *Ctx) {
		ids.record("ingress", ctx)
		if err := ctx.Post(h2, free[1], nil); err != nil {
			t.Error(err)
		}
	})

	// Saturate spillColor: the blocker executes (still counted in mem
	// until it returns), one filler queues behind it, and the second
	// filler exceeds the bound — spilled, color marked spilling.
	if err := r.Post(hBlock, spillColor, nil); err != nil {
		t.Fatal(err)
	}
	<-blocked
	for i := 0; i < 2; i++ {
		if err := r.Post(hFill, spillColor, nil); err != nil {
			t.Fatal(err)
		}
	}
	if got := r.Stats().SpilledEvents; got != 1 {
		t.Fatalf("SpilledEvents = %d after saturation, want 1", got)
	}

	// Drive the chain: hops 1–3 run on core 1 (their colors home
	// there); hop 4 targets the spilling color and must land on disk.
	if err := r.Post(h1, free[0], nil); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for r.Stats().SpilledEvents < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("spillhop never reached disk: SpilledEvents = %d", r.Stats().SpilledEvents)
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	<-done
	drain(t, r)

	st := r.Stats()
	if st.SpilledEvents < 2 || st.ReloadedEvents < 2 {
		t.Errorf("spill round-trip: spilled=%d reloaded=%d, want >= 2 each",
			st.SpilledEvents, st.ReloadedEvents)
	}

	// Every hop saw the same nonzero trace, parented by the previous
	// hop's span — including across the timer arm and the disk
	// round-trip.
	ids.mu.Lock()
	defer ids.mu.Unlock()
	chain := []string{"ingress", "deriver", "timerhop", "spillhop", "leaf"}
	trace := ids.trace["ingress"]
	if trace == 0 {
		t.Fatal("ingress hop has no trace id")
	}
	if ids.parent["ingress"] != 0 {
		t.Errorf("ingress parent = %#x, want 0 (trace root)", ids.parent["ingress"])
	}
	for i, hop := range chain {
		if ids.trace[hop] != trace {
			t.Errorf("%s trace = %#x, want %#x", hop, ids.trace[hop], trace)
		}
		if ids.span[hop] == 0 {
			t.Errorf("%s has no span id", hop)
		}
		if i > 0 && ids.parent[hop] != ids.span[chain[i-1]] {
			t.Errorf("%s parent = %#x, want %s's span %#x",
				hop, ids.parent[hop], chain[i-1], ids.span[chain[i-1]])
		}
	}

	// The dump must reconstruct the same chain: connected, depth 5,
	// critical path running the full length to the leaf.
	var buf bytes.Buffer
	if err := r.DumpTrace(&buf); err != nil {
		t.Fatal(err)
	}
	idx, err := obs.ParseFlowDump(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !idx.Connected(trace) {
		t.Errorf("trace %#x not connected in the dump", trace)
	}
	if d := idx.Depth(trace); d != 5 {
		t.Errorf("Depth(%#x) = %d, want 5", trace, d)
	}
	if roots := idx.Roots[trace]; len(roots) != 1 || roots[0].Span != ids.span["ingress"] {
		t.Errorf("Roots(%#x) = %+v, want exactly the ingress span %#x",
			trace, roots, ids.span["ingress"])
	}
	path := idx.CriticalPath(trace)
	if len(path) != 5 {
		t.Fatalf("CriticalPath length = %d, want 5", len(path))
	}
	if last := path[len(path)-1]; last.Span != ids.span["leaf"] || last.Handler != "leaf" {
		t.Errorf("critical path ends at %q span %#x, want leaf span %#x",
			last.Handler, last.Span, ids.span["leaf"])
	}
	for _, s := range path {
		if idx.QueueDelayMicros(s) < 0 {
			t.Errorf("span %#x: negative queue delay", s.Span)
		}
	}
}

// TestFlowConnectedUnderSteals: events migrate wholesale on a steal,
// so causal ids must survive arbitrary migration. All load lands on
// core 0's colors while four workers run; the thieves' executions must
// still reconstruct into fully connected two-hop traces — no orphans.
func TestFlowConnectedUnderSteals(t *testing.T) {
	r := startRuntime(t, Config{Cores: 4, ObsSampleRate: 1, TraceRing: 1 << 16})
	spin := func(d time.Duration) {
		for end := time.Now().Add(d); time.Now().Before(end); {
		}
	}
	var wg sync.WaitGroup
	hChild := r.Register("child", func(ctx *Ctx) { spin(50 * time.Microsecond); wg.Done() })
	hRoot := r.Register("root", func(ctx *Ctx) {
		spin(50 * time.Microsecond)
		if err := ctx.Post(hChild, ctx.Color(), nil); err != nil {
			t.Error(err)
		}
	})
	cols := colorsOn(r, 0, 32)
	const n = 800
	wg.Add(n)
	for i := 0; i < n; i++ {
		if err := r.Post(hRoot, cols[i%len(cols)], i); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	drain(t, r)
	st := r.Stats().Total()
	if st.Steals == 0 {
		t.Skip("no steals under this scheduling; nothing to verify")
	}

	var buf bytes.Buffer
	if err := r.DumpTrace(&buf); err != nil {
		t.Fatal(err)
	}
	idx, err := obs.ParseFlowDump(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(idx.Orphans) != 0 {
		t.Errorf("%d orphan spans after steals (ring holds %d records/core, all %d chains fit)",
			len(idx.Orphans), 1<<16, n)
	}
	deep := 0
	for trace := range idx.Traces {
		if idx.Depth(trace) == 2 {
			deep++
		}
	}
	if deep == 0 {
		t.Error("no two-hop traces reconstructed")
	}
	if st.StolenEvents > 0 {
		stolen := false
		for _, s := range idx.Spans {
			if s.Stolen {
				stolen = true
				break
			}
		}
		if !stolen {
			t.Error("StolenEvents > 0 but no span in the dump is marked stolen")
		}
	}
}

// TestTraceLineageSurvivesRestart extends the PR 7 two-runtime restart
// test with causal lineage: a spilled record's trace/span/parent ids
// must survive the disk round trip across a process restart. Run 1 is
// never started (PR 7's pattern), so posts past the bound spill under
// SpillSyncAlways and stay durable at Stop; run 2 recovers the backlog
// and the reloaded events must execute with run 1's identifiers — a
// root that founded its own trace, and an internal continuation still
// parented by run 1's (synthetic) posting span.
func TestTraceLineageSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		Cores:             2,
		MaxQueuedPerColor: 2,
		OverloadPolicy:    OverloadSpill,
		SpillDir:          dir,
		SpillSync:         SpillSyncAlways,
		SpillRecover:      true,
	}
	const (
		parentTrace = 0x4242
		parentSpan  = 0x77
	)

	rt1 := newRuntime(t, cfg)
	hWork := rt1.Register("work", func(ctx *Ctx) {})
	color := colorsOn(rt1, 0, 1)[0]
	// Two in-memory posts fill the bound (they drop at Stop); the third
	// spills as a trace root. The fourth takes the internal posting
	// path with an explicit parent — exactly what Ctx.Post passes when
	// a handler posts into a spilling color.
	for seq := 0; seq < 3; seq++ {
		if err := rt1.Post(hWork, color, seq); err != nil {
			t.Fatal(err)
		}
	}
	if err := rt1.post(nil, hWork, color, 200, false, parentTrace, parentSpan); err != nil {
		t.Fatal(err)
	}
	if got := rt1.Stats().SpilledEvents; got != 2 {
		t.Fatalf("run 1 SpilledEvents = %d, want 2", got)
	}
	rt1.Stop()

	type seen struct{ trace, span, parent uint64 }
	var mu sync.Mutex
	got := map[int]seen{}
	rt2 := newRuntime(t, cfg)
	hWork2 := rt2.Register("work", func(ctx *Ctx) {
		mu.Lock()
		got[ctx.Data().(int)] = seen{ctx.TraceID(), ctx.SpanID(), ctx.ev.ParentSpan}
		mu.Unlock()
	})
	_ = hWork2
	if st := rt2.Stats(); st.RecoveredEvents != 2 || st.TornRecords != 0 {
		t.Fatalf("recovery: recovered=%d torn=%d, want 2/0", st.RecoveredEvents, st.TornRecords)
	}
	if err := rt2.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt2.Stop)
	drain(t, rt2)

	mu.Lock()
	defer mu.Unlock()
	root, ok := got[2]
	if !ok {
		t.Fatalf("spilled root (data 2) never executed; got %v", got)
	}
	if root.trace == 0 || root.trace != root.span || root.parent != 0 {
		t.Errorf("recovered root ids = %+v, want trace == span != 0, parent 0", root)
	}
	child, ok := got[200]
	if !ok {
		t.Fatalf("spilled continuation (data 200) never executed; got %v", got)
	}
	if child.trace != parentTrace || child.parent != parentSpan {
		t.Errorf("recovered continuation = %+v, want trace %#x parent %#x across restart",
			child, uint64(parentTrace), uint64(parentSpan))
	}
	if child.span == 0 || child.span == root.span {
		t.Errorf("recovered continuation span = %#x, want nonzero and distinct from root %#x",
			child.span, root.span)
	}
}

// TestTraceRingDisabledZeroAlloc: TraceRing: -1 must pay zero bytes
// per event — no id stamping, no ring append, no per-post allocation
// anywhere on the post→execute→complete path.
func TestTraceRingDisabledZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; alloc accounting is meaningless")
	}
	r := startRuntime(t, Config{Cores: 1, TraceRing: -1, ObsSampleRate: -1})
	done := make(chan struct{}, 1)
	h := r.Register("noop", func(ctx *Ctx) { done <- struct{}{} })

	// A GC during the measured loop can clear the event pool and charge
	// a spurious refill allocation to us; retry a couple of times and
	// require one clean measurement.
	var allocs float64
	for attempt := 0; attempt < 3; attempt++ {
		allocs = testing.AllocsPerRun(200, func() {
			if err := r.Post(h, 7, nil); err != nil {
				t.Fatal(err)
			}
			<-done
		})
		if allocs == 0 {
			return
		}
	}
	t.Errorf("TraceRing: -1 runtime allocates %.3f per post/execute, want 0", allocs)
}

// TestStallWatchdog: a handler parked past StallThreshold is reported
// exactly once per episode — the stalled-cores gauge rises, the
// per-core stall counter ticks, a goroutine stack is captured, a STALL
// instant lands in the flight recorder — and the gauge clears when the
// handler finally returns.
func TestStallWatchdog(t *testing.T) {
	r := startRuntime(t, Config{Cores: 2, StallThreshold: 20 * time.Millisecond})
	release := make(chan struct{})
	entered := make(chan struct{})
	var traceID atomic.Uint64
	h := r.Register("stuck", func(ctx *Ctx) {
		traceID.Store(ctx.TraceID())
		close(entered)
		<-release
	})
	if err := r.Post(h, 1, nil); err != nil {
		t.Fatal(err)
	}
	<-entered

	deadline := time.Now().Add(5 * time.Second)
	for r.Stats().StalledCores == 0 {
		if time.Now().After(deadline) {
			t.Fatal("watchdog never flagged the parked handler")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Several watchdog ticks pass while the handler stays parked; the
	// episode must still be counted once.
	time.Sleep(60 * time.Millisecond)
	st := r.Stats()
	if st.StalledCores != 1 {
		t.Errorf("StalledCores = %d, want 1", st.StalledCores)
	}
	if total := st.Total(); total.Stalls != 1 {
		t.Errorf("Stalls = %d, want exactly 1 per episode", total.Stalls)
	}
	stack := r.LastStallStack()
	if !bytes.Contains(stack, []byte("goroutine")) {
		t.Errorf("LastStallStack has no goroutine dump (len %d)", len(stack))
	}
	var metrics bytes.Buffer
	if err := r.WriteMetrics(&metrics); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"mely_stalled_cores 1", "mely_stalls_total"} {
		if !strings.Contains(metrics.String(), want) {
			t.Errorf("metrics exposition missing %q", want)
		}
	}
	var dump bytes.Buffer
	if err := r.DumpTrace(&dump); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(dump.String(), "STALL") {
		t.Error("flight recorder has no STALL instant")
	}

	close(release)
	deadline = time.Now().Add(5 * time.Second)
	for r.Stats().StalledCores != 0 {
		if time.Now().After(deadline) {
			t.Fatal("stalled-cores gauge never cleared after the handler returned")
		}
		time.Sleep(5 * time.Millisecond)
	}
	drain(t, r)
}
