package mely

import (
	"fmt"
	"runtime"
	"time"

	"github.com/melyruntime/mely/internal/policy"
	"github.com/melyruntime/mely/internal/timerwheel"
	"github.com/melyruntime/mely/internal/topology"
)

// Color is an event-coloring annotation: events with equal colors run
// serially, events with different colors may run concurrently. Color 0
// (DefaultColor) serializes everything posted without a color choice.
// The space is 64-bit so identifiers — connection ids, request ids,
// object keys — color events directly, with no wraparound ever aliasing
// two serialization domains.
type Color uint64

// DefaultColor is the color of unannotated events.
const DefaultColor Color = 0

// Policy selects the queue layout and workstealing algorithm, matching
// the configurations evaluated in the paper. Batch stealing is
// orthogonal to the policy choice: the runtime applies it on top of
// EVERY stealing policy by default — including the Libasync-smp
// baselines, whose original protocol moved one color per steal — so
// set MaxStealColors to 1 when reproducing a paper configuration
// faithfully. (The simulator, which regenerates the paper's tables,
// keeps batching off unless a policy.Config enables it.)
type Policy int

const (
	// PolicyMelyWS is Mely with all three heuristics (the paper's
	// recommended configuration and the default).
	PolicyMelyWS Policy = iota + 1
	// PolicyMely is Mely without workstealing.
	PolicyMely
	// PolicyMelyBaseWS is Mely's queues with the naive Libasync-smp
	// stealing algorithm.
	PolicyMelyBaseWS
	// PolicyMelyTimeLeftWS enables only the time-left heuristic.
	PolicyMelyTimeLeftWS
	// PolicyMelyPenaltyWS enables time-left plus penalty-aware.
	PolicyMelyPenaltyWS
	// PolicyMelyLocalityWS enables only locality-aware victim order.
	PolicyMelyLocalityWS
	// PolicyLibasync is the Libasync-smp baseline without stealing.
	PolicyLibasync
	// PolicyLibasyncWS is the Libasync-smp baseline with its stealing.
	PolicyLibasyncWS
)

// String names the policy like the paper's tables.
func (p Policy) String() string { return p.internal().String() }

func (p Policy) internal() policy.Config {
	switch p {
	case PolicyMelyWS, 0:
		return policy.MelyWS()
	case PolicyMely:
		return policy.Mely()
	case PolicyMelyBaseWS:
		return policy.MelyBaseWS()
	case PolicyMelyTimeLeftWS:
		return policy.MelyTimeLeftWS()
	case PolicyMelyPenaltyWS:
		return policy.MelyPenaltyWS()
	case PolicyMelyLocalityWS:
		return policy.MelyLocalityWS()
	case PolicyLibasync:
		return policy.Libasync()
	case PolicyLibasyncWS:
		return policy.LibasyncWS()
	default:
		return policy.Config{}
	}
}

// Config configures a Runtime. The zero value is ready for production:
// one worker per CPU, the full Mely policy, topology discovered from
// the host.
type Config struct {
	// Cores is the number of worker goroutines (default GOMAXPROCS).
	Cores int
	// Policy selects the scheduling configuration (default PolicyMelyWS).
	Policy Policy
	// Pin requests best-effort CPU pinning of the workers (Linux).
	Pin bool
	// BatchThreshold caps consecutive same-color events on a core
	// (default 10, the paper's setting). Only meaningful for Mely
	// layouts.
	BatchThreshold int
	// StealCostSeed seeds the steal-cost estimate before the runtime
	// has measured real steals (default 2µs).
	StealCostSeed time.Duration
	// IdleSpins is how many failed work-finding rounds a worker spins
	// through before parking (default 4).
	IdleSpins int
	// ParkTimeout bounds a parked worker's sleep so missed wakeups
	// self-heal (default 500µs).
	ParkTimeout time.Duration
	// MaxStealColors caps how many colors one steal attempt migrates.
	// Batch stealing takes up to half the victim's stealable colors in
	// a single victim-lock critical section, amortizing the per-color
	// lock, table, and wakeup costs. 0 applies the default cap (8);
	// 1 restores the paper's single-color steal protocol; larger
	// values raise the cap, up to policy.MaxStealColorsLimit (64) —
	// the whole batch detaches under one victim-lock hold, so the cap
	// bounds that critical section.
	MaxStealColors int
	// StealBackoff is the initial pause of the exponential backoff a
	// worker applies when consecutive steal probes find nothing: each
	// further fruitless round doubles the pause up to ParkTimeout, and
	// any success resets it — throttling steal storms when many cores
	// go idle together. 0 means the 10µs default; negative disables
	// the backoff entirely — every post-spin park lasts the full
	// ParkTimeout regardless of the failure streak.
	StealBackoff time.Duration
	// TimerTick is the granularity of the per-core timing wheels behind
	// PostAfter/PostAt/PostEvery (default 1ms): timers fire on the next
	// tick at or after their deadline, so the tick bounds the structural
	// firing lag. Finer ticks buy resolution at the cost of more wheel
	// positions to walk on an idle core.
	TimerTick time.Duration
	// TimerWheelLevels is the depth of the timing-wheel hierarchy
	// (default 4). Each level multiplies the horizon by 64: four levels
	// of 1ms ticks cover ~4.7 hours before deadlines park in the top
	// level and pay extra cascades (still correct, just costlier).
	TimerWheelLevels int

	// ObsSampleRate is the live-observability sampling period: one in
	// every ObsSampleRate posted events carries a timestamp from post to
	// execution, feeding the per-core queue-delay and execution-time
	// histograms (Stats.Cores[i].QueueDelayHist / ExecTimeHist) and the
	// per-color delay attribution. Rounded up to a power of two. 0 means
	// the default of 64 (≈1.6% of events, within noise of the posting
	// hot path); 1 samples every event; negative disables the latency
	// histograms entirely.
	ObsSampleRate int
	// TraceRing is the per-core flight-recorder capacity in records
	// (rounded up to a power of two). The recorder is always on: every
	// execution, steal, re-home, spill, reload, timer firing, and poll
	// wakeup appends one fixed-size record, overwriting the oldest, and
	// Runtime.DumpTrace renders the rings as Chrome trace JSON on
	// demand. 0 means the default of 4096 records per core (~128 KiB
	// per core); negative disables the recorder.
	TraceRing int
	// StallThreshold arms the stall watchdog: a sampler goroutine that
	// checks each core's last-progress stamp and, when a handler has
	// been executing longer than the threshold, emits a KindStall
	// flight-recorder record carrying the stalled span's trace id,
	// captures a full goroutine stack (Runtime.LastStallStack), counts
	// the episode (Stats mely_stalls_total / mely_stalled_cores), and —
	// if StallDumpPath is set — writes an automatic DumpTrace. One
	// record per episode: a core stuck in one handler is reported once
	// until that handler returns. 0 (the default) disables the watchdog
	// entirely; thresholds under 1ms are rejected (the stamp check runs
	// at threshold/4, floored at 10ms — finer stalls need a profiler,
	// not a watchdog).
	StallThreshold time.Duration
	// StallDumpPath, when non-empty, makes the stall watchdog write the
	// flight recorder to this file (Chrome trace JSON, overwritten per
	// episode) the moment a stall is detected, so the trace context
	// around the stall survives even if the process must be killed.
	StallDumpPath string

	// ObsInterval arms the metrics time-series collector: every
	// interval a collector goroutine snapshots Stats into a
	// fixed-memory ring of ObsHistory samples, derives per-window rates
	// and latency quantiles (/debug/timeseries, the mely_*_rate
	// gauges), and runs the health detectors over the window
	// (Runtime.Health, /debug/health, the OnAnomaly hook). 0 (the
	// default) disables all of it — a bare runtime pays nothing, not
	// even the ring's memory. Intervals under 1ms are rejected; 1s is
	// the conventional production setting.
	ObsInterval time.Duration
	// ObsHistory is the time-series ring's capacity in samples
	// (default 240 — four minutes of history at the 1s interval). The
	// ring's memory is allocated once at Start and bounded by
	// ObsHistory x the fixed per-sample size; nothing grows with
	// uptime.
	ObsHistory int
	// TargetQueueDelay feeds the adaptive-bounds stepping stone: when
	// positive (and the collector is armed), the health engine
	// computes the MaxQueuedEvents that would hold queue delay near
	// this target at the observed drain rate (Little's law) and
	// reports it as HealthReport.RecommendedMaxQueued and the
	// mely_recommended_max_queued gauge. Recommendation only — nothing
	// enforces it yet.
	TargetQueueDelay time.Duration
	// OnAnomaly, when set, is called from the collector goroutine each
	// time a fresh anomaly episode begins — a detector firing that was
	// not firing at the previous evaluation. The report passed in is
	// the full current health report. When OnAnomaly is nil and
	// IncidentDir is set, the default action captures an incident
	// bundle instead.
	OnAnomaly func(HealthReport)
	// IncidentDir arms profile-on-anomaly: when non-empty, fresh
	// anomaly episodes (and stall-watchdog episodes) capture a bounded
	// evidence bundle — CPU profile, flight-recorder trace, timeseries
	// window, health report — into a timestamped subdirectory of this
	// directory, created if missing. Captures are asynchronous and
	// rate-limited by IncidentMinGap; overlapping triggers are counted
	// but not captured.
	IncidentDir string
	// IncidentMinGap is the minimum spacing between incident captures
	// (default 30s; negative disables the gap, for tests).
	IncidentMinGap time.Duration

	// MaxQueuedEvents bounds the runtime-wide number of in-memory
	// queued events (0 = unlimited, the pre-overload behavior). Once
	// the bound is reached, posting follows OverloadPolicy. Unbounded
	// runtimes pay nothing for this machinery — the admission layer is
	// not even constructed.
	MaxQueuedEvents int
	// MaxQueuedPerColor bounds one color's in-memory queue depth
	// (0 = unlimited). A single hot color — a popular connection, a
	// runaway PostEvery — then saturates alone instead of starving the
	// whole runtime's budget.
	MaxQueuedPerColor int
	// OverloadPolicy selects what posting does at a bound:
	// OverloadReject (default; external posts fail with ErrOverloaded),
	// OverloadBlock (external posts wait, PostContext-cancelable), or
	// OverloadSpill (saturated colors' queue tails move to disk and
	// reload on drain — posting never fails, memory stays bounded).
	OverloadPolicy OverloadPolicy
	// SpillDir is the directory OverloadSpill keeps its segment files
	// in. Empty means a fresh private temp directory, removed at Stop.
	// An explicit directory must be owned by exactly one runtime:
	// without SpillRecover, leftover *.seg files in it are deleted as
	// crash orphans at startup and the runtime's own segments are
	// deleted at Stop; with SpillRecover they are scanned, repaired,
	// and reloaded instead (see docs/spillq-format.md).
	SpillDir string
	// SpillSegmentBytes is the roll threshold of the spill segment
	// files (default 256 KiB): also the granularity at which consumed
	// disk space is returned.
	SpillSegmentBytes int
	// SpillSync selects when spilled records reach stable storage
	// (default SpillSyncNone: only at segment seal). See the
	// SpillSyncPolicy constants for the loss-window/throughput
	// trade-off each policy buys.
	SpillSync SpillSyncPolicy
	// SpillSyncEvery is the SpillSyncInterval period (default 100ms):
	// the upper bound on how much spilled state one crash can lose
	// under that policy. Ignored by the other policies.
	SpillSyncEvery time.Duration
	// SpillRecover makes the spill store durable across restarts:
	// Open recovers surviving segments in SpillDir instead of deleting
	// them (torn tails truncated at the last CRC-valid record), the
	// backlog reloads into the owning colors' FIFOs at startup, and
	// Stop seals segments instead of deleting them. Requires an
	// explicit SpillDir and OverloadSpill. Handlers must be registered
	// in the same order across restarts — records reference handlers
	// by registration index.
	SpillRecover bool
}

func (c Config) withDefaults() Config {
	if c.Cores == 0 {
		c.Cores = runtime.GOMAXPROCS(0)
	}
	if c.Policy == 0 {
		c.Policy = PolicyMelyWS
	}
	if c.BatchThreshold == 0 {
		c.BatchThreshold = 10
	}
	if c.StealCostSeed == 0 {
		c.StealCostSeed = 2 * time.Microsecond
	}
	if c.IdleSpins == 0 {
		c.IdleSpins = 4
	}
	if c.ParkTimeout == 0 {
		c.ParkTimeout = 500 * time.Microsecond
	}
	if c.StealBackoff == 0 {
		c.StealBackoff = 10 * time.Microsecond
	}
	if c.TimerTick == 0 {
		c.TimerTick = time.Millisecond
	}
	if c.TimerWheelLevels == 0 {
		c.TimerWheelLevels = 4
	}
	if c.ObsSampleRate == 0 {
		c.ObsSampleRate = 64
	}
	if c.TraceRing == 0 {
		c.TraceRing = 4096
	}
	if c.ObsHistory == 0 {
		c.ObsHistory = 240
	}
	if c.IncidentMinGap == 0 {
		c.IncidentMinGap = 30 * time.Second
	}
	return c
}

func (c Config) validate() error {
	if c.Cores < 0 || c.Cores > 1024 {
		return fmt.Errorf("mely: invalid core count %d", c.Cores)
	}
	if err := c.Policy.internal().Validate(); err != nil {
		return fmt.Errorf("mely: invalid policy: %w", err)
	}
	if c.BatchThreshold < 0 {
		return fmt.Errorf("mely: negative batch threshold")
	}
	if c.MaxStealColors < 0 {
		return fmt.Errorf("mely: negative steal batch cap")
	}
	if c.MaxStealColors > policy.MaxStealColorsLimit {
		return fmt.Errorf("mely: steal batch cap %d exceeds limit %d",
			c.MaxStealColors, policy.MaxStealColorsLimit)
	}
	if c.TimerTick < 0 {
		return fmt.Errorf("mely: negative timer tick")
	}
	if c.TimerTick > 0 && c.TimerTick < 10*time.Microsecond {
		return fmt.Errorf("mely: timer tick %v below the 10µs floor", c.TimerTick)
	}
	if c.TimerWheelLevels < 0 || c.TimerWheelLevels > timerwheel.MaxLevels {
		return fmt.Errorf("mely: timer wheel levels %d out of range [1, %d]",
			c.TimerWheelLevels, timerwheel.MaxLevels)
	}
	if c.ObsSampleRate > 1<<30 {
		return fmt.Errorf("mely: obs sample rate %d too large", c.ObsSampleRate)
	}
	if c.TraceRing > 1<<24 {
		return fmt.Errorf("mely: trace ring size %d too large (max %d records per core)",
			c.TraceRing, 1<<24)
	}
	if c.StallThreshold < 0 {
		return fmt.Errorf("mely: negative stall threshold")
	}
	if c.StallThreshold > 0 && c.StallThreshold < time.Millisecond {
		return fmt.Errorf("mely: stall threshold %v below the 1ms floor", c.StallThreshold)
	}
	if c.ObsInterval < 0 {
		return fmt.Errorf("mely: negative obs interval")
	}
	if c.ObsInterval > 0 && c.ObsInterval < time.Millisecond {
		return fmt.Errorf("mely: obs interval %v below the 1ms floor", c.ObsInterval)
	}
	if c.ObsHistory < 0 || c.ObsHistory > 1<<20 {
		return fmt.Errorf("mely: obs history %d out of range [0, %d]", c.ObsHistory, 1<<20)
	}
	if c.TargetQueueDelay < 0 {
		return fmt.Errorf("mely: negative target queue delay")
	}
	if c.MaxQueuedEvents < 0 || c.MaxQueuedPerColor < 0 {
		return fmt.Errorf("mely: negative queue bound")
	}
	if c.SpillSegmentBytes < 0 {
		return fmt.Errorf("mely: negative spill segment size")
	}
	switch c.OverloadPolicy {
	case OverloadReject, OverloadBlock, OverloadSpill:
	default:
		return fmt.Errorf("mely: invalid overload policy %d", int(c.OverloadPolicy))
	}
	switch c.SpillSync {
	case SpillSyncNone, SpillSyncInterval, SpillSyncAlways:
	default:
		return fmt.Errorf("mely: invalid spill sync policy %d", int(c.SpillSync))
	}
	if c.SpillSyncEvery < 0 {
		return fmt.Errorf("mely: negative spill sync interval")
	}
	if c.SpillRecover {
		if c.OverloadPolicy != OverloadSpill {
			return fmt.Errorf("mely: SpillRecover requires OverloadSpill")
		}
		if c.SpillDir == "" {
			return fmt.Errorf("mely: SpillRecover requires an explicit SpillDir (a private temp directory cannot survive a restart)")
		}
	}
	return nil
}

// detectTopology discovers the host hierarchy, falling back to a flat
// layout truncated or extended to n cores.
func detectTopology(n int) *topology.Topology {
	if topo, err := topology.FromSysFS("/sys/devices/system/cpu"); err == nil && topo.NumCores() >= n {
		if topo.NumCores() == n {
			return topo
		}
		// Re-group the first n cores of the discovered layout.
		share := make([]int, n)
		pkg := make([]int, n)
		for i := 0; i < n; i++ {
			share[i] = topo.ShareGroup(i)
			pkg[i] = topo.Package(i)
		}
		if sub, err := topology.New(share, pkg); err == nil {
			return sub
		}
	}
	return topology.Uniform(n)
}
