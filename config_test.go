package mely

import "testing"

func TestDetectTopologyFallback(t *testing.T) {
	for _, n := range []int{1, 2, 8, 64} {
		topo := detectTopology(n)
		if topo.NumCores() != n {
			t.Fatalf("detectTopology(%d) gave %d cores", n, topo.NumCores())
		}
	}
}

func TestPolicyStrings(t *testing.T) {
	tests := []struct {
		pol  Policy
		want string
	}{
		{PolicyMelyWS, "mely+locality+timeleft+penalty-WS"},
		{PolicyMely, "mely"},
		{PolicyLibasync, "libasync"},
		{PolicyLibasyncWS, "libasync-WS"},
		{PolicyMelyBaseWS, "mely-baseWS"},
	}
	for _, tt := range tests {
		if got := tt.pol.String(); got != tt.want {
			t.Errorf("Policy(%d).String() = %q, want %q", tt.pol, got, tt.want)
		}
	}
}

func TestZeroPolicyDefaultsToMelyWS(t *testing.T) {
	// The full heuristic set plus batch stealing (the v2 default; set
	// MaxStealColors to 1 for the paper's single-color protocol).
	r, err := New(Config{Cores: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r.pol.String() != "mely+locality+timeleft+penalty-WS+batchsteal" {
		t.Fatalf("default policy = %s", r.pol)
	}
}

func TestSingleColorStealOptOut(t *testing.T) {
	r, err := New(Config{Cores: 1, MaxStealColors: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r.pol.BatchSteal {
		t.Fatal("MaxStealColors=1 must disable batch stealing")
	}
	if r.pol.String() != "mely+locality+timeleft+penalty-WS" {
		t.Fatalf("single-color policy = %s", r.pol)
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.Cores <= 0 || cfg.BatchThreshold != 10 ||
		cfg.StealCostSeed <= 0 || cfg.ParkTimeout <= 0 || cfg.IdleSpins <= 0 ||
		cfg.StealBackoff <= 0 || cfg.TimerTick <= 0 || cfg.TimerWheelLevels <= 0 {
		t.Fatalf("defaults incomplete: %+v", cfg)
	}
}

func TestConfigRejectsNegativeStealCap(t *testing.T) {
	if _, err := New(Config{Cores: 1, MaxStealColors: -1}); err == nil {
		t.Fatal("negative MaxStealColors must be rejected")
	}
}

func TestConfigRejectsBadTimerKnobs(t *testing.T) {
	if _, err := New(Config{Cores: 1, TimerTick: -1}); err == nil {
		t.Fatal("negative TimerTick must be rejected")
	}
	if _, err := New(Config{Cores: 1, TimerTick: 1}); err == nil {
		t.Fatal("sub-floor TimerTick must be rejected")
	}
	if _, err := New(Config{Cores: 1, TimerWheelLevels: 99}); err == nil {
		t.Fatal("excessive TimerWheelLevels must be rejected")
	}
	if _, err := New(Config{Cores: 1, TimerWheelLevels: -1}); err == nil {
		t.Fatal("negative TimerWheelLevels must be rejected")
	}
}
