package mely

import "testing"

func TestDetectTopologyFallback(t *testing.T) {
	for _, n := range []int{1, 2, 8, 64} {
		topo := detectTopology(n)
		if topo.NumCores() != n {
			t.Fatalf("detectTopology(%d) gave %d cores", n, topo.NumCores())
		}
	}
}

func TestPolicyStrings(t *testing.T) {
	tests := []struct {
		pol  Policy
		want string
	}{
		{PolicyMelyWS, "mely+locality+timeleft+penalty-WS"},
		{PolicyMely, "mely"},
		{PolicyLibasync, "libasync"},
		{PolicyLibasyncWS, "libasync-WS"},
		{PolicyMelyBaseWS, "mely-baseWS"},
	}
	for _, tt := range tests {
		if got := tt.pol.String(); got != tt.want {
			t.Errorf("Policy(%d).String() = %q, want %q", tt.pol, got, tt.want)
		}
	}
}

func TestZeroPolicyDefaultsToMelyWS(t *testing.T) {
	r, err := New(Config{Cores: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r.pol.String() != "mely+locality+timeleft+penalty-WS" {
		t.Fatalf("default policy = %s", r.pol)
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.Cores <= 0 || cfg.BatchThreshold != 10 ||
		cfg.StealCostSeed <= 0 || cfg.ParkTimeout <= 0 || cfg.IdleSpins <= 0 {
		t.Fatalf("defaults incomplete: %+v", cfg)
	}
}
