package mely

import (
	"context"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// TestSpillRecoverAcrossRuntimes is the runtime-level restart path: a
// bounded spilling runtime overflows colors to disk under SyncAlways,
// stops (durable close), and a second runtime on the same SpillDir
// recovers the backlog — every spilled event executes exactly once, in
// per-color FIFO order, with Stats reporting the recovery.
func TestSpillRecoverAcrossRuntimes(t *testing.T) {
	dir := t.TempDir()
	const (
		colors   = 3
		perColor = 40
		bound    = 4 // per-color in-memory bound: seqs >= bound spill
	)
	cfg := Config{
		Cores:             2,
		MaxQueuedPerColor: bound,
		OverloadPolicy:    OverloadSpill,
		SpillDir:          dir,
		SpillSync:         SpillSyncAlways,
		SpillRecover:      true,
	}

	// Run 1: fill each color's in-memory bound, spill the rest. The
	// workers never start, so nothing drains — the first `bound` posts
	// of each color stay in memory (dropped at Stop, like any queued
	// event), and seqs [bound, perColor) land on disk.
	rt1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	h1 := rt1.Register("work", func(ctx *Ctx) {})
	for seq := 0; seq < perColor; seq++ {
		for c := 1; c <= colors; c++ {
			if err := rt1.Post(h1, Color(c), seq); err != nil {
				t.Fatalf("post color %d seq %d: %v", c, seq, err)
			}
		}
	}
	s1 := rt1.Stats()
	wantSpilled := int64(colors * (perColor - bound))
	if s1.SpilledEvents != wantSpilled {
		t.Fatalf("run 1 spilled %d events, want %d", s1.SpilledEvents, wantSpilled)
	}
	if s1.SpillSyncs == 0 {
		t.Fatal("run 1: SyncAlways recorded no spill syncs")
	}
	rt1.Stop()
	if segs, _ := filepath.Glob(filepath.Join(dir, "*.seg")); len(segs) == 0 {
		t.Fatal("durable Stop left no segment files to recover")
	}

	// Run 2: same registration order (records reference handlers by
	// index), recover, drain, and check the execution trace.
	rt2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer rt2.Close()
	var mu sync.Mutex
	got := make(map[Color][]int)
	_ = rt2.Register("work", func(ctx *Ctx) {
		mu.Lock()
		got[ctx.Color()] = append(got[ctx.Color()], ctx.Data().(int))
		mu.Unlock()
	})
	s2 := rt2.Stats()
	if s2.RecoveredEvents != wantSpilled {
		t.Fatalf("RecoveredEvents = %d, want %d", s2.RecoveredEvents, wantSpilled)
	}
	if s2.TornRecords != 0 {
		t.Fatalf("TornRecords = %d after a clean close, want 0", s2.TornRecords)
	}
	if err := rt2.Start(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if err := rt2.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	for c := 1; c <= colors; c++ {
		seqs := got[Color(c)]
		if len(seqs) != perColor-bound {
			t.Fatalf("color %d executed %d recovered events, want %d: %v",
				c, len(seqs), perColor-bound, seqs)
		}
		for i, seq := range seqs {
			if want := bound + i; seq != want {
				t.Fatalf("color %d: position %d executed seq %d, want %d (FIFO violated): %v",
					c, i, seq, want, seqs)
			}
		}
	}
	s2 = rt2.Stats()
	if s2.ReloadedEvents != wantSpilled {
		t.Fatalf("ReloadedEvents = %d, want %d", s2.ReloadedEvents, wantSpilled)
	}
	if s2.SpilledNow != 0 {
		t.Fatalf("SpilledNow = %d after drain, want 0", s2.SpilledNow)
	}
}

// TestSpillRecoverValidation pins the config contract: recovery
// demands an explicit SpillDir and the spill policy.
func TestSpillRecoverValidation(t *testing.T) {
	_, err := New(Config{
		MaxQueuedEvents: 8,
		OverloadPolicy:  OverloadSpill,
		SpillRecover:    true, // no SpillDir
	})
	if err == nil {
		t.Fatal("SpillRecover without SpillDir was accepted")
	}
	_, err = New(Config{
		MaxQueuedEvents: 8,
		OverloadPolicy:  OverloadReject,
		SpillDir:        t.TempDir(),
		SpillRecover:    true,
	})
	if err == nil {
		t.Fatal("SpillRecover without OverloadSpill was accepted")
	}
	for _, bad := range []SpillSyncPolicy{-1, 99} {
		if _, err := New(Config{MaxQueuedEvents: 8, SpillSync: bad}); err == nil {
			t.Fatalf("SpillSync %d was accepted", int(bad))
		}
	}
}

// TestParseSpillSyncPolicy round-trips the flag surface.
func TestParseSpillSyncPolicy(t *testing.T) {
	for _, p := range []SpillSyncPolicy{SpillSyncNone, SpillSyncInterval, SpillSyncAlways} {
		got, err := ParseSpillSyncPolicy(p.String())
		if err != nil || got != p {
			t.Fatalf("round trip %v: got %v, err %v", p, got, err)
		}
	}
	if got, err := ParseSpillSyncPolicy(""); err != nil || got != SpillSyncNone {
		t.Fatalf("empty string: got %v, err %v", got, err)
	}
	if _, err := ParseSpillSyncPolicy("fsync"); err == nil {
		t.Fatal("bogus policy name was accepted")
	}
	_ = fmt.Sprint(SpillSyncPolicy(7)) // String must not panic on unknowns
}
