module github.com/melyruntime/mely

go 1.22
