package mely

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/melyruntime/mely/internal/obs"
)

// TestHealthDisabledByDefault pins the zero-config contract: no
// collector, an Enabled=false healthy report, and an empty (but
// well-formed) timeseries document.
func TestHealthDisabledByDefault(t *testing.T) {
	r := newRuntime(t, Config{Cores: 2})
	defer r.Close()
	if r.collector != nil {
		t.Fatal("collector built without ObsInterval")
	}
	rep := r.Health()
	if rep.Enabled || !rep.Healthy {
		t.Fatalf("disabled report = %+v, want Enabled=false Healthy=true", rep)
	}
	var buf bytes.Buffer
	if healthy, err := r.WriteHealth(&buf); err != nil || !healthy {
		t.Fatalf("WriteHealth: healthy=%v err=%v", healthy, err)
	}
	buf.Reset()
	if err := r.WriteTimeSeries(&buf); err != nil {
		t.Fatalf("WriteTimeSeries: %v", err)
	}
	var dump obs.TSDump
	if err := json.Unmarshal(buf.Bytes(), &dump); err != nil {
		t.Fatalf("disabled timeseries is not JSON: %v", err)
	}
	if dump.Samples != 0 || len(dump.Points) != 0 {
		t.Fatalf("disabled dump = %+v, want empty", dump)
	}
	// The rate/health series must not appear on a collector-less
	// runtime, so a process's series set is stable for its lifetime.
	buf.Reset()
	if err := r.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "mely_health_status") ||
		strings.Contains(buf.String(), "mely_events_rate") {
		t.Fatal("health/rate series rendered without a collector")
	}
}

// TestCollectorTimeSeries drives a collector-armed runtime and checks
// samples accumulate, rates derive, and the debug documents render.
func TestCollectorTimeSeries(t *testing.T) {
	r := newRuntime(t, Config{
		Cores:       2,
		ObsInterval: 2 * time.Millisecond,
		ObsHistory:  16,
	})
	defer r.Close()
	h := r.Register("work", func(ctx *Ctx) {})
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	go func() {
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			_ = r.Post(h, Color(i%8), nil)
			time.Sleep(50 * time.Microsecond)
		}
	}()
	defer close(stop)

	waitFor(t, 5*time.Second, "collector samples", func() bool {
		return r.collector.ring.Len() >= 4
	})

	var buf bytes.Buffer
	if err := r.WriteTimeSeries(&buf); err != nil {
		t.Fatal(err)
	}
	var dump obs.TSDump
	if err := json.Unmarshal(buf.Bytes(), &dump); err != nil {
		t.Fatalf("timeseries JSON: %v", err)
	}
	if dump.Samples < 4 || len(dump.Points) < 3 {
		t.Fatalf("dump has %d samples / %d points, want >= 4 / >= 3", dump.Samples, len(dump.Points))
	}
	last := dump.Points[len(dump.Points)-1]
	if len(last.Cores) != 2 {
		t.Fatalf("point has %d core rows, want 2", len(last.Cores))
	}

	// The ring never exceeds its history.
	waitFor(t, 5*time.Second, "ring to fill", func() bool {
		return r.collector.ring.Len() == 16
	})
	time.Sleep(10 * time.Millisecond)
	if n := r.collector.ring.Len(); n != 16 {
		t.Fatalf("ring len %d exceeds history 16", n)
	}

	// /metrics gains the rate and health series.
	buf.Reset()
	if err := r.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	samples, err := obs.ParseExposition(buf.String())
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"mely_events_rate", "mely_posts_rate", "mely_steals_rate",
		"mely_spill_bytes_rate", "mely_health_status", "mely_anomalies_total",
		"mely_recommended_max_queued",
	} {
		if _, ok := samples[name]; !ok {
			t.Errorf("metrics missing %s", name)
		}
	}
	if samples["mely_health_status"] != 1 {
		t.Errorf("mely_health_status = %v, want 1 on a healthy runtime", samples["mely_health_status"])
	}
	if samples["mely_events_rate"] <= 0 {
		t.Errorf("mely_events_rate = %v, want > 0 under load", samples["mely_events_rate"])
	}
}

// TestCollectorRecommendation checks the adaptive-bounds gauge flows
// from Config.TargetQueueDelay through the collector to Health().
func TestCollectorRecommendation(t *testing.T) {
	r := newRuntime(t, Config{
		Cores:            2,
		ObsInterval:      2 * time.Millisecond,
		ObsHistory:       8,
		TargetQueueDelay: 10 * time.Millisecond,
	})
	defer r.Close()
	h := r.Register("work", func(ctx *Ctx) {})
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	go func() {
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			_ = r.Post(h, Color(i%4), nil)
			time.Sleep(20 * time.Microsecond)
		}
	}()
	defer close(stop)
	waitFor(t, 5*time.Second, "a recommendation", func() bool {
		return r.Health().RecommendedMaxQueued > 0
	})
}

// TestOnAnomalyStall injects a stalling handler and requires the
// watchdog-fed stall detector to flip health and fire the OnAnomaly
// hook within a couple of detection windows.
func TestOnAnomalyStall(t *testing.T) {
	var fired atomic.Int64
	var gotReport atomic.Value
	r := newRuntime(t, Config{
		Cores:          2,
		ObsInterval:    5 * time.Millisecond,
		ObsHistory:     64,
		StallThreshold: time.Millisecond,
		OnAnomaly: func(rep HealthReport) {
			fired.Add(1)
			gotReport.Store(rep)
		},
	})
	defer r.Close()
	block := make(chan struct{})
	h := r.Register("stall", func(ctx *Ctx) { <-block })
	defer close(block)
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	if err := r.Post(h, 1, nil); err != nil {
		t.Fatal(err)
	}
	// Watchdog tick is floored at 10ms; the collector samples every
	// 5ms. Detection must land well within a second. The hook fires
	// once per fresh anomaly kind, and the blocked core's neighbor can
	// legitimately trip steal-imbalance first — wait for the report
	// that carries the stall.
	hasStall := func() bool {
		rep, ok := gotReport.Load().(HealthReport)
		if !ok {
			return false
		}
		for _, a := range rep.Anomalies {
			if a.Kind == AnomalyStallRecurrence {
				return true
			}
		}
		return false
	}
	waitFor(t, 5*time.Second, "OnAnomaly to report the stall", hasStall)
	if fired.Load() == 0 {
		t.Fatal("OnAnomaly never fired")
	}
	if rep := gotReport.Load().(HealthReport); rep.Healthy {
		t.Fatal("hook report claims healthy during a stall")
	}
	if !r.Health().Enabled || r.Health().Healthy {
		t.Fatal("Runtime.Health does not reflect the stall")
	}
	var buf bytes.Buffer
	healthy, err := r.WriteHealth(&buf)
	if err != nil || healthy {
		t.Fatalf("WriteHealth during stall: healthy=%v err=%v", healthy, err)
	}
	// The hook replaced the default incident action: no captures.
	if got := r.Health().Incidents; got != 0 {
		t.Fatalf("incidents = %d with a custom hook, want 0", got)
	}
}

// TestIncidentCapture checks the profile-on-anomaly bundle: a stall on
// a runtime with IncidentDir produces one timestamped directory with
// the four artifacts, and the rate limit suppresses a second capture.
func TestIncidentCapture(t *testing.T) {
	dir := t.TempDir()
	r := newRuntime(t, Config{
		Cores:          2,
		ObsInterval:    5 * time.Millisecond,
		ObsHistory:     64,
		StallThreshold: time.Millisecond,
		IncidentDir:    dir,
		IncidentMinGap: time.Hour, // one capture for the whole test
	})
	defer r.Close()
	block := make(chan struct{})
	h := r.Register("stall", func(ctx *Ctx) { <-block })
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	if err := r.Post(h, 1, nil); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, "incident capture", func() bool {
		return r.Health().Incidents >= 1
	})
	close(block)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_ = r.Drain(ctx)
	// Let any in-flight capture finish before reading the directory.
	waitFor(t, 5*time.Second, "capture to settle", func() bool {
		r.incidentMu.Lock()
		busy := r.incidentBusy
		r.incidentMu.Unlock()
		return !busy
	})

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Fatalf("incident dir has %d entries, want exactly 1 (rate limit): %v", len(entries), names)
	}
	bundle := filepath.Join(dir, entries[0].Name())
	if !strings.HasPrefix(entries[0].Name(), "incident-") {
		t.Fatalf("bundle name %q lacks the incident- prefix", entries[0].Name())
	}
	for _, name := range []string{"health.json", "timeseries.json", "trace.json", "cpu.pprof"} {
		fi, err := os.Stat(filepath.Join(bundle, name))
		if err != nil {
			t.Fatalf("bundle missing %s: %v", name, err)
		}
		if name != "cpu.pprof" && fi.Size() == 0 {
			t.Fatalf("bundle artifact %s is empty", name)
		}
	}
	// health.json must carry the unhealthy verdict it was captured under.
	raw, err := os.ReadFile(filepath.Join(bundle, "health.json"))
	if err != nil {
		t.Fatal(err)
	}
	var rep HealthReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("health.json: %v", err)
	}
	if rep.Healthy || !rep.Enabled {
		t.Fatalf("captured report = %+v, want unhealthy+enabled", rep)
	}
}

// TestCaptureIncidentManual pins the synchronous API: no IncidentDir
// is an error; with one, the bundle lands where the caller is told.
func TestCaptureIncidentManual(t *testing.T) {
	r := newRuntime(t, Config{Cores: 1})
	defer r.Close()
	if _, err := r.CaptureIncident("manual"); err == nil {
		t.Fatal("CaptureIncident without IncidentDir did not error")
	}

	dir := t.TempDir()
	r2 := newRuntime(t, Config{Cores: 1, IncidentDir: dir})
	defer r2.Close()
	got, err := r2.CaptureIncident("Weird Reason!!")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(got, "-weird-reason") {
		t.Fatalf("sanitized dir = %q, want -weird-reason suffix", got)
	}
	if _, err := os.Stat(filepath.Join(got, "trace.json")); err != nil {
		t.Fatalf("manual bundle incomplete: %v", err)
	}
}

// TestHealthSpillGrowthAnomaly feeds the collector a synthetic
// growing-backlog series through the internal ring and checks the
// runtime-side episode accounting (fresh episodes count once, not per
// evaluation).
func TestHealthEpisodeAccounting(t *testing.T) {
	r := newRuntime(t, Config{Cores: 2, ObsInterval: time.Hour, ObsHistory: 32})
	defer r.Close()
	col := r.collector
	// Hand-drive ticks: quiet baseline, then a live stall for several
	// evaluations — the episode must count exactly once.
	mkSample := func(i int64, stalled int64) obs.TSSample {
		s := obs.TSSample{
			MonoNanos: i * 1e9, WallNanos: i * 1e9,
			Events: i * 1000, StalledCores: stalled,
			Cores: make([]obs.TSCore, 2),
		}
		s.QDelay[6] = i * 100
		return s
	}
	for i := int64(0); i < 5; i++ {
		s := mkSample(i, 0)
		col.ring.Append(&s)
		r.evaluateHealth(col)
	}
	if got := r.Health(); !got.Healthy || got.TotalAnomalies != 0 {
		t.Fatalf("baseline: %+v", got)
	}
	for i := int64(5); i < 9; i++ {
		s := mkSample(i, 1)
		col.ring.Append(&s)
		r.evaluateHealth(col)
	}
	rep := r.Health()
	if rep.Healthy {
		t.Fatal("live stall not reflected")
	}
	if rep.TotalAnomalies != 1 {
		t.Fatalf("TotalAnomalies = %d, want 1 (one episode, many evaluations)", rep.TotalAnomalies)
	}
	// Recovery then relapse: a second episode.
	for i := int64(9); i < 16; i++ {
		s := mkSample(i, 0)
		s.Stalls = 0
		col.ring.Append(&s)
		r.evaluateHealth(col)
	}
	if rep := r.Health(); !rep.Healthy {
		t.Fatalf("did not recover: %+v", rep)
	}
	for i := int64(16); i < 18; i++ {
		s := mkSample(i, 1)
		col.ring.Append(&s)
		r.evaluateHealth(col)
	}
	if rep := r.Health(); rep.TotalAnomalies != 2 {
		t.Fatalf("TotalAnomalies after relapse = %d, want 2", rep.TotalAnomalies)
	}
}
