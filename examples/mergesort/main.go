// Mergesort: the paper's "cache efficient" microbenchmark as a real
// program — a fork/join merge sort expressed as colored events. Each
// job allocates an array, sorts its halves under two fresh colors (so
// idle cores can steal them), and joins under the parent color (two
// same-colored events serialize, giving lock-free synchronization).
//
//	go run ./examples/mergesort
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"sort"
	"sync/atomic"
	"time"

	"github.com/melyruntime/mely"
)

type job struct {
	id    int
	data  []int
	sync  int // guarded by the job's parent color
	done  *atomic.Int64
	color mely.Color
}

type half struct {
	j  *job
	lo int
	hi int
}

func main() {
	rt, err := mely.New(mely.Config{Policy: mely.PolicyMelyWS})
	if err != nil {
		log.Fatal(err)
	}

	// Typed handlers: each ctx.Data() is statically a *job or *half.
	var sortHalf mely.TypedHandler[*half]
	join := mely.RegisterTyped(rt, "join", func(ctx *mely.TypedCtx[*job]) {
		j := ctx.Data()
		j.sync++ // safe: both join events share the parent color
		if j.sync < 2 {
			return
		}
		merge(j.data)
		if !sort.IntsAreSorted(j.data) {
			log.Fatalf("job %d: not sorted", j.id)
		}
		j.done.Add(1)
	})
	sortHalf = mely.RegisterTyped(rt, "sort-half", func(ctx *mely.TypedCtx[*half]) {
		h := ctx.Data()
		sort.Ints(h.j.data[h.lo:h.hi])
		if err := join.Post(h.j.color, h.j); err != nil {
			log.Fatal(err)
		}
	})
	spawn := mely.RegisterTyped(rt, "spawn", func(ctx *mely.TypedCtx[*job]) {
		j := ctx.Data()
		n := len(j.data)
		// Two halves under fresh colors: stealable by idle cores.
		c1 := mely.Color(1000 + 2*j.id)
		c2 := mely.Color(1001 + 2*j.id)
		if err := sortHalf.Post(c1, &half{j: j, lo: 0, hi: n / 2}); err != nil {
			log.Fatal(err)
		}
		if err := sortHalf.Post(c2, &half{j: j, lo: n / 2, hi: n}); err != nil {
			log.Fatal(err)
		}
	})

	if err := rt.Start(); err != nil {
		log.Fatal(err)
	}
	defer rt.Close()

	const jobs, size = 64, 1 << 15
	var done atomic.Int64
	rng := rand.New(rand.NewSource(1))
	start := time.Now()
	for i := 0; i < jobs; i++ {
		data := make([]int, size)
		for k := range data {
			data[k] = rng.Int()
		}
		j := &job{id: i, data: data, done: &done, color: mely.Color(100 + i)}
		if err := spawn.Post(j.color, j); err != nil {
			log.Fatal(err)
		}
	}
	if err := rt.Drain(context.Background()); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sorted %d arrays of %d ints in %v (%d joined)\n",
		jobs, size, time.Since(start).Round(time.Millisecond), done.Load())
	st := rt.Stats().Total()
	fmt.Printf("runtime: events=%d steals=%d (remote %d)\n",
		st.Events, st.Steals, st.RemoteSteals)
}

// merge combines the two sorted halves of data in place.
func merge(data []int) {
	n := len(data)
	out := make([]int, 0, n)
	i, j := 0, n/2
	for i < n/2 && j < n {
		if data[i] <= data[j] {
			out = append(out, data[i])
			i++
		} else {
			out = append(out, data[j])
			j++
		}
	}
	out = append(out, data[i:n/2]...)
	out = append(out, data[j:]...)
	copy(data, out)
}
