// Webserver: the paper's SWS scenario end to end — a static Web server
// on the mely runtime serving 1 KB files, plus a built-in closed-loop
// load burst so the example is self-contained.
//
//	go run ./examples/webserver
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"time"

	"github.com/melyruntime/mely"
	"github.com/melyruntime/mely/internal/loadgen"
	"github.com/melyruntime/mely/internal/sws"
)

func main() {
	rt, err := mely.New(mely.Config{Policy: mely.PolicyMelyWS})
	if err != nil {
		log.Fatal(err)
	}
	if err := rt.Start(); err != nil {
		log.Fatal(err)
	}
	defer rt.Close()

	// 150 one-KB files, like the paper's workload.
	files := make(map[string][]byte, 150)
	for i := 0; i < 150; i++ {
		body := make([]byte, 1024)
		for j := range body {
			body[j] = byte('a' + (i+j)%26)
		}
		files[fmt.Sprintf("/file%d.bin", i)] = body
	}
	// Idle connections are reaped by the runtime's color-affine timers:
	// a PostAfter per connection, serialized with that connection's
	// request handlers, no locks and no time.AfterFunc goroutines.
	srv, err := sws.New(sws.Config{Runtime: rt, Files: files, IdleTimeout: 400 * time.Millisecond})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	if err := srv.Serve(ln); err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	// On Linux this runs the raw-epoll backend: reactor shards harvest
	// readiness and post colored events, no goroutine per connection.
	fmt.Printf("serving %d files on %s (%s backend)\n", len(files), srv.Addr(), srv.NetBackend())

	// Closed-loop burst: 50 virtual clients for 3 seconds.
	paths := make([]string, 0, len(files))
	for p := range files {
		paths = append(paths, p)
	}
	res, err := loadgen.RunHTTP(context.Background(), loadgen.HTTPConfig{
		Addr:            srv.Addr().String(),
		Clients:         50,
		RequestsPerConn: 150,
		Paths:           paths,
		Duration:        3 * time.Second,
		// A little think time makes some clients outlast the server's
		// idle timeout, exercising the timer-driven reaper.
		ThinkTime:   20 * time.Millisecond,
		ThinkJitter: 600 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	// Clients whose think pause outlasts the idle timeout find their
	// connection reaped and reconnect; loadgen reports those as errors.
	fmt.Printf("served %d requests in %v (%.1f KReq/s, %d reaped-mid-think errors)\n",
		res.Requests, res.Elapsed.Round(time.Millisecond), res.KRequestsPS, res.Errors)
	stats := rt.Stats()
	st := stats.Total()
	fmt.Printf("runtime: events=%d steals=%d (remote %d) stolen-time=%v\n",
		st.Events, st.Steals, st.RemoteSteals, st.StolenTime.Round(time.Microsecond))
	fmt.Printf("timers: fired=%d canceled=%d idle-reaped=%d\n",
		st.TimersFired, stats.TimersCanceled, srv.IdleClosed())
	if stats.PollWakeups > 0 {
		fmt.Printf("poller: wakeups=%d events=%d (%.1f events/wakeup) write-stalls=%d\n",
			stats.PollWakeups, stats.PollEvents,
			float64(stats.PollEvents)/float64(stats.PollWakeups), stats.WriteStalls)
	}
}
