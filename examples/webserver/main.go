// Webserver: the paper's SWS scenario end to end — a static Web server
// on the mely runtime serving 1 KB files, plus a built-in closed-loop
// load burst so the example is self-contained.
//
//	go run ./examples/webserver
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"time"

	"github.com/melyruntime/mely"
	"github.com/melyruntime/mely/internal/loadgen"
	"github.com/melyruntime/mely/internal/sws"
)

func main() {
	rt, err := mely.New(mely.Config{Policy: mely.PolicyMelyWS})
	if err != nil {
		log.Fatal(err)
	}
	if err := rt.Start(); err != nil {
		log.Fatal(err)
	}
	defer rt.Close()

	// 150 one-KB files, like the paper's workload.
	files := make(map[string][]byte, 150)
	for i := 0; i < 150; i++ {
		body := make([]byte, 1024)
		for j := range body {
			body[j] = byte('a' + (i+j)%26)
		}
		files[fmt.Sprintf("/file%d.bin", i)] = body
	}
	srv, err := sws.New(sws.Config{Runtime: rt, Files: files})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	if err := srv.Serve(ln); err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Printf("serving %d files on %s\n", len(files), srv.Addr())

	// Closed-loop burst: 50 virtual clients for 3 seconds.
	paths := make([]string, 0, len(files))
	for p := range files {
		paths = append(paths, p)
	}
	res, err := loadgen.RunHTTP(context.Background(), loadgen.HTTPConfig{
		Addr:            srv.Addr().String(),
		Clients:         50,
		RequestsPerConn: 150,
		Paths:           paths,
		Duration:        3 * time.Second,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("served %d requests in %v (%.1f KReq/s, %d errors)\n",
		res.Requests, res.Elapsed.Round(time.Millisecond), res.KRequestsPS, res.Errors)
	st := rt.Stats().Total()
	fmt.Printf("runtime: events=%d steals=%d (remote %d) stolen-time=%v\n",
		st.Events, st.Steals, st.RemoteSteals, st.StolenTime.Round(time.Microsecond))
}
