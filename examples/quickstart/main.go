// Quickstart: the event-coloring model in one file.
//
// Events of one color run serially — the per-account balances below are
// plain ints with no locks — while different colors run in parallel
// across cores, balanced by Mely's workstealing.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"github.com/melyruntime/mely"
)

func main() {
	rt, err := mely.New(mely.Config{}) // defaults: all cores, Mely + all heuristics
	if err != nil {
		log.Fatal(err)
	}

	const accounts = 8
	balances := make([]int, accounts) // no locks: colors serialize per account

	var deposit mely.Handler
	deposit = rt.Register("deposit", func(ctx *mely.Ctx) {
		amount := ctx.Data().(int)
		account := int(ctx.Color()) - 1
		balances[account] += amount // safe: only this color touches it
	})

	if err := rt.Start(); err != nil {
		log.Fatal(err)
	}
	defer rt.Stop()

	// 10 000 deposits across 8 accounts, posted from one goroutine,
	// executed in parallel across colors.
	for i := 0; i < 10_000; i++ {
		account := i % accounts
		if err := rt.Post(deposit, mely.Color(account+1), 1); err != nil {
			log.Fatal(err)
		}
	}
	if err := rt.Drain(context.Background()); err != nil {
		log.Fatal(err)
	}

	total := 0
	for i, b := range balances {
		fmt.Printf("account %d: %d\n", i, b)
		total += b
	}
	fmt.Printf("total deposits: %d (want 10000)\n", total)

	st := rt.Stats().Total()
	fmt.Printf("events=%d steals=%d stolen=%d\n", st.Events, st.Steals, st.StolenEvents)
}
