// Quickstart: the v1 event-coloring API in one file.
//
// Events of one color run serially — the per-account balances below are
// plain ints with no locks — while different colors run in parallel
// across cores, balanced by Mely's workstealing. Colors are 64-bit, so
// a real server can color each of millions of connections by id; typed
// handlers read their payload without assertions; batches deliver a
// core's worth of events under one lock; Run ties the lifecycle to a
// context.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"github.com/melyruntime/mely"
)

func main() {
	rt, err := mely.New(mely.Config{}) // defaults: all cores, Mely + all heuristics
	if err != nil {
		log.Fatal(err)
	}

	const accounts = 8
	balances := make([]int64, accounts) // no locks: colors serialize per account

	// A typed handler: ctx.Data() is an int64, no .(int64) at the use site.
	deposit := mely.RegisterTyped(rt, "deposit", func(ctx *mely.TypedCtx[int64]) {
		account := int(ctx.Color()) - 1
		balances[account] += ctx.Data() // safe: only this color touches it
	})

	// Run owns the lifecycle: Start now, then — once the context ends —
	// drain everything posted and stop the workers.
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- rt.Run(ctx) }()

	// 10 000 deposits across 8 accounts, posted in 64-event batches:
	// each batch is grouped by owning core and delivered under one lock
	// acquisition per core.
	batch := make([]mely.BatchEvent, 0, 64)
	for i := 0; i < 10_000; i++ {
		account := i % accounts
		batch = append(batch, deposit.Event(mely.Color(account+1), 1))
		if len(batch) == cap(batch) {
			if err := rt.PostBatch(batch); err != nil {
				log.Fatal(err)
			}
			batch = batch[:0]
		}
	}
	if err := rt.PostBatch(batch); err != nil {
		log.Fatal(err)
	}

	// Graceful shutdown: Run drains the queues, then stops.
	cancel()
	if err := <-done; err != nil {
		log.Fatal(err)
	}

	var total int64
	for i, b := range balances {
		fmt.Printf("account %d: %d\n", i, b)
		total += b
	}
	fmt.Printf("total deposits: %d (want 10000)\n", total)

	st := rt.Stats().Total()
	fmt.Printf("events=%d batched=%d steals=%d stolen=%d\n",
		st.Events, st.BatchedEvents, st.Steals, st.StolenEvents)
}
