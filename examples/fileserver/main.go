// Fileserver: the paper's SFS scenario end to end — an encrypted,
// authenticated file server whose CPU-intensive crypto handlers are the
// only colored ones, plus multio-like clients reading a file through
// it. Workstealing spreads the crypto across cores.
//
//	go run ./examples/fileserver
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"
	"net"
	"sync"
	"time"

	"github.com/melyruntime/mely"
	"github.com/melyruntime/mely/internal/sfs"
)

func main() {
	rt, err := mely.New(mely.Config{Policy: mely.PolicyMelyWS})
	if err != nil {
		log.Fatal(err)
	}
	if err := rt.Start(); err != nil {
		log.Fatal(err)
	}
	defer rt.Close()

	psk := []byte("example-secret")
	content := make([]byte, 8<<20) // 8 MiB so the example stays quick
	rand.New(rand.NewSource(7)).Read(content)

	srv, err := sfs.NewServer(sfs.ServerConfig{
		Runtime: rt,
		Files:   map[string][]byte{"/data": content},
		PSK:     psk,
	})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	if err := srv.Serve(ln); err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Printf("serving /data (%d MiB, AES-CTR + HMAC-SHA256) on %s\n",
		len(content)>>20, srv.Addr())

	const clients = 4
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c, err := sfs.Dial(srv.Addr().String(), psk)
			if err != nil {
				log.Printf("client %d: %v", id, err)
				return
			}
			defer c.Close()
			got, err := c.ReadFile("/data", len(content))
			if err != nil {
				log.Printf("client %d: %v", id, err)
				return
			}
			if !bytes.Equal(got, content) {
				log.Printf("client %d: file corrupted", id)
				return
			}
			fmt.Printf("client %d: verified %d MiB\n", id, len(got)>>20)
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	mb := float64(clients*len(content)) / (1 << 20)
	fmt.Printf("aggregate: %.0f MiB in %v = %.1f MB/s\n",
		mb, elapsed.Round(time.Millisecond), mb/elapsed.Seconds())
	stats := rt.Stats()
	st := stats.Total()
	fmt.Printf("runtime: events=%d steals=%d stolen-events=%d\n",
		st.Events, st.Steals, st.StolenEvents)
	if stats.PollWakeups > 0 {
		// The epoll backend was active (Linux): frames arrived through
		// reactor shards, and response frames the kernel would not take
		// were queued and drained on EPOLLOUT.
		fmt.Printf("poller: wakeups=%d events=%d write-stalls=%d\n",
			stats.PollWakeups, stats.PollEvents, stats.WriteStalls)
	}
}
