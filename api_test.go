package mely

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/melyruntime/mely/internal/equeue"
)

func TestPostBatchExecutesAll(t *testing.T) {
	for _, pol := range []Policy{PolicyMelyWS, PolicyMely, PolicyLibasync} {
		t.Run(pol.String(), func(t *testing.T) {
			r := startRuntime(t, Config{Cores: 4, Policy: pol})
			var count atomic.Int64
			h := r.Register("count", func(ctx *Ctx) { count.Add(1) })
			batch := make([]BatchEvent, 0, 64)
			total := 0
			for round := 0; round < 20; round++ {
				batch = batch[:0]
				for i := 0; i < 64; i++ {
					batch = append(batch, BatchEvent{Handler: h, Color: Color(round*64 + i + 1), Data: i})
					total++
				}
				if err := r.PostBatch(batch); err != nil {
					t.Fatal(err)
				}
			}
			drain(t, r)
			if got := count.Load(); got != int64(total) {
				t.Fatalf("executed %d events, want %d", got, total)
			}
			if bt := r.Stats().Total().BatchedEvents; bt == 0 {
				t.Fatal("no events accounted to the batched path")
			}
		})
	}
}

func TestPostBatchPreservesColorOrder(t *testing.T) {
	// Per-color FIFO: a batch's same-color events must execute in batch
	// order even though the batch is regrouped by owning core.
	r := startRuntime(t, Config{Cores: 4})
	type rec struct {
		mu  sync.Mutex
		seq map[Color][]int
	}
	state := rec{seq: map[Color][]int{}}
	h := r.Register("rec", func(ctx *Ctx) {
		state.mu.Lock()
		state.seq[ctx.Color()] = append(state.seq[ctx.Color()], ctx.Data().(int))
		state.mu.Unlock()
	})
	const colors, perColor = 8, 50
	batch := make([]BatchEvent, 0, colors*perColor)
	for i := 0; i < perColor; i++ {
		for c := 0; c < colors; c++ {
			batch = append(batch, BatchEvent{Handler: h, Color: Color(c + 1), Data: i})
		}
	}
	if err := r.PostBatch(batch); err != nil {
		t.Fatal(err)
	}
	drain(t, r)
	for c, seq := range state.seq {
		if len(seq) != perColor {
			t.Fatalf("color %d executed %d events, want %d", c, len(seq), perColor)
		}
		for i, v := range seq {
			if v != i {
				t.Fatalf("color %d ran out of order: %v", c, seq)
			}
		}
	}
}

func TestPostBatchValidation(t *testing.T) {
	r := newRuntime(t, Config{Cores: 2})
	h := r.Register("ok", func(ctx *Ctx) {})
	if err := r.PostBatch(nil); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
	err := r.PostBatch([]BatchEvent{
		{Handler: h, Color: 1},
		{Handler: Handler{id: 99}, Color: 2}, // unknown: reject whole batch
	})
	if err == nil {
		t.Fatal("batch with unknown handler must fail")
	}
	// Regression: a zero-value Handler in the FIRST entry must not slip
	// past the handler-pricing memo (whose sentinel must not collide
	// with id 0) — it once enqueued HandlerID(-1) and crashed a worker.
	if err := r.PostBatch([]BatchEvent{{Color: 1}}); err == nil {
		t.Fatal("batch with zero-value handler must fail")
	}
	if got := r.pending.Load(); got != 0 {
		t.Fatalf("rejected batch leaked %d pending events", got)
	}
	r.Stop()
	if err := r.PostBatch([]BatchEvent{{Handler: h, Color: 1}}); !errors.Is(err, ErrStopped) {
		t.Fatalf("PostBatch after Stop = %v, want ErrStopped", err)
	}
}

func TestCtxPostBatch(t *testing.T) {
	r := startRuntime(t, Config{Cores: 2})
	var count atomic.Int64
	leaf := r.Register("leaf", func(ctx *Ctx) { count.Add(1) })
	fan := r.Register("fan", func(ctx *Ctx) {
		batch := make([]BatchEvent, 16)
		for i := range batch {
			batch[i] = BatchEvent{Handler: leaf, Color: Color(i + 10)}
		}
		if err := ctx.PostBatch(batch); err != nil {
			t.Error(err)
		}
	})
	if err := r.Post(fan, 1, nil); err != nil {
		t.Fatal(err)
	}
	drain(t, r)
	if got := count.Load(); got != 16 {
		t.Fatalf("fan-out executed %d, want 16", got)
	}
}

func TestRegisterTyped(t *testing.T) {
	type job struct{ n int }
	r := startRuntime(t, Config{Cores: 2})
	var sum atomic.Int64
	var h TypedHandler[*job]
	h = RegisterTyped(r, "typed", func(ctx *TypedCtx[*job]) {
		j := ctx.Data() // no assertion
		sum.Add(int64(j.n))
		if j.n > 1 {
			if err := h.Post(ctx.Color(), &job{n: j.n - 1}); err != nil {
				t.Error(err)
			}
		}
	})
	if err := h.Post(5, &job{n: 10}); err != nil {
		t.Fatal(err)
	}
	drain(t, r)
	if got := sum.Load(); got != 55 {
		t.Fatalf("typed chain sum = %d, want 55", got)
	}
}

func TestTypedBatchAndForeignPayload(t *testing.T) {
	r := startRuntime(t, Config{Cores: 2})
	var sum, zeros atomic.Int64
	h := RegisterTyped(r, "typed", func(ctx *TypedCtx[int]) {
		if ctx.Data() == 0 {
			zeros.Add(1)
		}
		sum.Add(int64(ctx.Data()))
	})
	batch := []BatchEvent{h.Event(1, 10), h.Event(2, 20), h.Event(3, 30)}
	if err := r.PostBatch(batch); err != nil {
		t.Fatal(err)
	}
	// A foreign payload through the untyped handle yields the zero T.
	if err := r.Post(h.Untyped(), 4, "not an int"); err != nil {
		t.Fatal(err)
	}
	drain(t, r)
	if got := sum.Load(); got != 60 {
		t.Fatalf("typed batch sum = %d, want 60", got)
	}
	if got := zeros.Load(); got != 1 {
		t.Fatalf("foreign payload: zero-value executions = %d, want 1", got)
	}
}

func TestRunLifecycle(t *testing.T) {
	r := newRuntime(t, Config{Cores: 2})
	var count atomic.Int64
	h := r.Register("work", func(ctx *Ctx) { count.Add(1) })
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- r.Run(ctx) }()
	// Wait for Start inside Run, then load it up.
	for !r.started.Load() {
		time.Sleep(time.Millisecond)
	}
	for i := 0; i < 200; i++ {
		if err := r.Post(h, Color(i%16+1), nil); err != nil {
			t.Fatal(err)
		}
	}
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Run = %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Run did not return after cancel")
	}
	// Run drained before stopping: nothing may be dropped.
	if got := count.Load(); got != 200 {
		t.Fatalf("executed %d, want 200 (Run must drain)", got)
	}
	if err := r.Post(h, 1, nil); !errors.Is(err, ErrStopped) {
		t.Fatalf("Post after Run = %v, want ErrStopped", err)
	}
}

func TestCloseDuringRunUnblocksDrain(t *testing.T) {
	// Regression: Run drains with an uncancellable context; a Close that
	// drops queued events must fail that drain with ErrStopped instead
	// of leaving Run (and any Drain waiter) hung forever.
	r := newRuntime(t, Config{Cores: 1})
	h := r.Register("slow", func(ctx *Ctx) { time.Sleep(5 * time.Millisecond) })
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- r.Run(ctx) }()
	for !r.started.Load() {
		time.Sleep(time.Millisecond)
	}
	for i := 0; i < 50; i++ {
		if err := r.Post(h, 1, nil); err != nil {
			t.Fatal(err)
		}
	}
	r.Close() // drops the queued remainder
	cancel()
	select {
	case err := <-done:
		// nil only if every event completed before Close; with 50
		// serialized 5ms events that cannot happen, so the drain must
		// have observed the stop.
		if !errors.Is(err, ErrStopped) {
			t.Fatalf("Run after Close = %v, want ErrStopped", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Run hung after Close dropped queued events")
	}
}

func TestConcurrentStartClose(t *testing.T) {
	// Regression: Close racing Start (the `go rt.Run(ctx)` + `defer
	// rt.Close()` pattern) must not interleave wg.Wait with Start's
	// worker registration — a WaitGroup-misuse panic under -race.
	for i := 0; i < 100; i++ {
		r := newRuntime(t, Config{Cores: 4})
		done := make(chan struct{})
		go func() {
			_ = r.Start()
			close(done)
		}()
		r.Close()
		<-done
		r.Close()
	}
}

func TestCloseIdempotent(t *testing.T) {
	r := newRuntime(t, Config{Cores: 2})
	if err := r.Close(); err != nil {
		t.Fatalf("Close before Start = %v", err)
	}
	r2 := newRuntime(t, Config{Cores: 2})
	if err := r2.Start(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := r2.Close(); err != nil {
			t.Fatalf("Close #%d = %v", i, err)
		}
	}
	h := r2.Register("late", func(ctx *Ctx) {})
	if err := r2.Post(h, 1, nil); !errors.Is(err, ErrStopped) {
		t.Fatalf("Post after Close = %v, want ErrStopped", err)
	}
}

func TestUnparkWakesPromptly(t *testing.T) {
	// Regression for the missed-wakeup window: with a long ParkTimeout,
	// a post racing park must still execute quickly. Before the fix,
	// unpark read the parked flag before park stored it and the post
	// waited out the full timeout.
	r := startRuntime(t, Config{Cores: 1, IdleSpins: 1, ParkTimeout: 10 * time.Second})
	done := make(chan struct{}, 1)
	h := r.Register("wake", func(ctx *Ctx) { done <- struct{}{} })
	for i := 0; i < 50; i++ {
		time.Sleep(time.Duration(i%5) * 100 * time.Microsecond) // jitter around park entry
		if err := r.Post(h, 1, nil); err != nil {
			t.Fatal(err)
		}
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatalf("post %d not executed: missed wakeup (worker parked through it)", i)
		}
	}
}

// TestShardCollisionLeaseStress is the ownership-lease stress for the
// sharded table: many posters, the batch path, and thieves hammer a set
// of colors that all collide in ONE table shard and all hash-home to
// core 0, so steals, re-homes, and shard-map mutations interleave as
// densely as possible. Run with -race. Asserts conservation (every
// event runs exactly once) and the color-serialization invariant.
func TestShardCollisionLeaseStress(t *testing.T) {
	r := startRuntime(t, Config{Cores: 4, Policy: PolicyMelyWS, ParkTimeout: 50 * time.Microsecond})

	// Colors homing on core 0 AND sharing one shard.
	shard := -1
	var hot []Color
	for c := uint64(1); len(hot) < 6; c++ {
		col := equeue.Color(c)
		if r.table.Hash(col) != 0 {
			continue
		}
		if shard < 0 {
			shard = r.table.ShardOf(col)
		}
		if r.table.ShardOf(col) == shard {
			hot = append(hot, Color(c))
		}
	}

	var count atomic.Int64
	inFlight := make([]atomic.Int32, len(hot))
	idx := make(map[Color]int, len(hot))
	for i, c := range hot {
		idx[c] = i
	}
	h := r.Register("burst", func(ctx *Ctx) {
		i := idx[ctx.Color()]
		if inFlight[i].Add(1) != 1 {
			t.Error("two events of one color ran concurrently")
		}
		count.Add(1)
		deadline := time.Now().Add(10 * time.Microsecond)
		for time.Now().Before(deadline) {
		}
		inFlight[i].Add(-1)
	}, WithCostEstimate(10*time.Microsecond))

	var wg sync.WaitGroup
	const posters, bursts, perBurst = 4, 40, 24
	for p := 0; p < posters; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			batch := make([]BatchEvent, 0, perBurst)
			for b := 0; b < bursts; b++ {
				if p%2 == 0 {
					// Half the posters use the batched path.
					batch = batch[:0]
					for i := 0; i < perBurst; i++ {
						batch = append(batch, BatchEvent{Handler: h, Color: hot[(p+i)%len(hot)]})
					}
					if err := r.PostBatch(batch); err != nil {
						t.Error(err)
						return
					}
				} else {
					for i := 0; i < perBurst; i++ {
						if err := r.Post(h, hot[(p+i)%len(hot)], nil); err != nil {
							t.Error(err)
							return
						}
					}
				}
				// Let bursts drain so leases revert and re-home.
				time.Sleep(time.Duration(150+p*41) * time.Microsecond)
			}
		}(p)
	}
	wg.Wait()
	drain(t, r)
	if got := count.Load(); got != posters*bursts*perBurst {
		t.Fatalf("executed %d, want %d (events lost or duplicated)", got, posters*bursts*perBurst)
	}
}
