package mely

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime/pprof"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/melyruntime/mely/internal/obs"
)

// This file is the self-monitoring layer (Config.ObsInterval): the
// collector goroutine that snapshots Stats into the obs.TimeSeries
// ring, the health engine's episode accounting and OnAnomaly dispatch,
// and profile-on-anomaly incident capture (Config.IncidentDir). The
// detectors themselves are pure functions in internal/obs
// (obs.EvaluateHealth); this layer owns the state that must live with
// the runtime — what was firing last evaluation, the cumulative
// episode count, and the capture rate limit.

// Anomaly kind strings, re-exported so callers can switch on
// HealthReport.Anomalies without importing internal packages.
const (
	AnomalyQueueDelayDrift = obs.AnomalyQueueDelayDrift
	AnomalyStealImbalance  = obs.AnomalyStealImbalance
	AnomalySpillGrowth     = obs.AnomalySpillGrowth
	AnomalyStallRecurrence = obs.AnomalyStallRecurrence
)

// Anomaly is one health detector firing: the kind (see the Anomaly*
// constants), a human-readable detail, and the observed value vs the
// limit it crossed (units depend on the kind).
type Anomaly struct {
	Kind   string    `json:"kind"`
	Detail string    `json:"detail"`
	Value  float64   `json:"value"`
	Limit  float64   `json:"limit"`
	At     time.Time `json:"at"`
}

// HealthReport is the runtime's self-assessment, re-evaluated every
// ObsInterval by the collector. Healthy means no detector is firing
// right now; TotalAnomalies counts episode starts over the runtime's
// lifetime (the mely_anomalies_total counter). With the collector
// disabled (ObsInterval 0) the report is Healthy with Enabled false.
type HealthReport struct {
	Enabled bool `json:"enabled"`
	Healthy bool `json:"healthy"`
	// Windows is how many derived windows the detectors saw.
	Windows int `json:"windows"`
	// TotalAnomalies counts fresh anomaly episodes since Start.
	TotalAnomalies int64 `json:"total_anomalies"`
	// RecommendedMaxQueued is the adaptive-bounds recommendation
	// (Config.TargetQueueDelay); 0 when no target is set or the window
	// is idle.
	RecommendedMaxQueued int64 `json:"recommended_max_queued"`
	// Incidents counts captured incident bundles (Config.IncidentDir).
	Incidents int64     `json:"incidents"`
	Anomalies []Anomaly `json:"anomalies,omitempty"`
}

// tsCollector is the per-runtime collector state: the ring, the health
// configuration, and the episode bookkeeping. Built by Start when
// Config.ObsInterval > 0.
type tsCollector struct {
	ring     *obs.TimeSeries
	interval time.Duration
	cfg      obs.HealthConfig
	stop     chan struct{}
	stopOnce sync.Once

	// scratch is the reusable sample the collector fills each tick, so
	// steady-state collection allocates only the Stats snapshot.
	// sampleMu serializes ticks: besides the collector goroutine, an
	// incident capture takes one out-of-band tick so the bundle
	// reflects the state at incident time, not the last timer firing.
	sampleMu sync.Mutex
	scratch  obs.TSSample

	mu     sync.Mutex
	report obs.HealthReport
	firing map[string]bool

	anomalies atomic.Int64
}

// newCollector sizes the ring for the runtime.
func newCollector(r *Runtime) *tsCollector {
	return &tsCollector{
		ring:     obs.NewTimeSeries(r.cfg.ObsHistory, len(r.cores), r.cfg.ObsInterval),
		interval: r.cfg.ObsInterval,
		cfg:      obs.HealthConfig{TargetQueueDelay: r.cfg.TargetQueueDelay},
		stop:     make(chan struct{}),
		firing:   make(map[string]bool),
		scratch:  obs.TSSample{Cores: make([]obs.TSCore, len(r.cores))},
	}
}

// collectorLoop is the collector goroutine: one Stats snapshot, ring
// append, and health evaluation per ObsInterval. Started by Start,
// stopped by Stop through the collector's stop channel.
func (r *Runtime) collectorLoop(col *tsCollector) {
	defer r.wg.Done()
	t := time.NewTicker(col.interval)
	defer t.Stop()
	for {
		select {
		case <-col.stop:
			return
		case <-t.C:
		}
		r.collectTick(col)
	}
}

// collectTick takes one sample and re-evaluates health.
func (r *Runtime) collectTick(col *tsCollector) {
	col.sampleMu.Lock()
	s := r.Stats()
	fillSample(&col.scratch, s, time.Now().UnixNano(), r.now())
	col.ring.Append(&col.scratch)
	col.sampleMu.Unlock()
	r.evaluateHealth(col)
}

// evaluateHealth runs the detectors over the ring and owns the
// episode accounting: a kind that was not firing at the previous
// evaluation is a fresh episode — counted once, dispatched once.
func (r *Runtime) evaluateHealth(col *tsCollector) {
	rep := obs.EvaluateHealth(col.ring.Snapshot(nil), col.cfg)

	col.mu.Lock()
	var fresh []string
	for _, a := range rep.Anomalies {
		if !col.firing[a.Kind] {
			fresh = append(fresh, a.Kind)
		}
	}
	for k := range col.firing {
		delete(col.firing, k)
	}
	for _, a := range rep.Anomalies {
		col.firing[a.Kind] = true
	}
	col.report = rep
	col.mu.Unlock()

	if len(fresh) == 0 {
		return
	}
	col.anomalies.Add(int64(len(fresh)))
	if hook := r.cfg.OnAnomaly; hook != nil {
		hook(r.Health())
		return
	}
	if r.cfg.IncidentDir != "" {
		// Hand the capture the report it fired under: a transient
		// anomaly (a rate detector flapping back under its threshold)
		// must still land in the bundle's health.json.
		trigger := r.healthFrom(rep, col)
		r.captureIncidentAsync(fresh[0], &trigger)
	}
}

// fillSample flattens a Stats snapshot into a TSSample, reusing the
// sample's Cores backing array.
func fillSample(dst *obs.TSSample, s Stats, wall, mono int64) {
	t := s.Total()
	cores := dst.Cores
	*dst = obs.TSSample{
		WallNanos: wall,
		MonoNanos: mono,

		Events:         t.Events,
		Posts:          t.PostedHere,
		ExecNanos:      t.ExecTime.Nanoseconds(),
		Steals:         t.Steals,
		StealAttempts:  t.StealAttempts,
		FailedSteals:   t.FailedSteals,
		SpilledEvents:  s.SpilledEvents,
		ReloadedEvents: s.ReloadedEvents,
		SpilledBytes:   s.SpilledBytes,
		RejectedPosts:  s.RejectedPosts,
		Panics:         t.Panics,
		Stalls:         t.Stalls,
		TimersFired:    t.TimersFired,

		QueuedEvents: s.QueuedEvents,
		SpilledNow:   s.SpilledNow,
		StalledCores: int64(s.StalledCores),

		QDelay: t.QueueDelayHist.Buckets,
		Exec:   t.ExecTimeHist.Buckets,
	}
	if cap(cores) < len(s.Cores) {
		cores = make([]obs.TSCore, len(s.Cores))
	}
	cores = cores[:len(s.Cores)]
	for i, c := range s.Cores {
		cores[i] = obs.TSCore{
			Events:        c.Events,
			ExecNanos:     c.ExecTime.Nanoseconds(),
			Steals:        c.Steals,
			StealAttempts: c.StealAttempts,
			FailedSteals:  c.FailedSteals,
			BackoffParks:  c.BackoffParks,
			Stalls:        c.Stalls,
			Queued:        int64(c.Queued),
		}
	}
	dst.Cores = cores
}

// Health reports the runtime's current self-assessment. With the
// collector disabled (Config.ObsInterval 0) the report is Healthy
// with Enabled false — a runtime that is not watching itself makes no
// claims either way.
func (r *Runtime) Health() HealthReport {
	col := r.collector
	if col == nil {
		return HealthReport{Enabled: false, Healthy: true, Incidents: r.incidents.Load()}
	}
	col.mu.Lock()
	rep := col.report
	col.mu.Unlock()
	return r.healthFrom(rep, col)
}

// healthFrom converts one detector evaluation into the public report.
func (r *Runtime) healthFrom(rep obs.HealthReport, col *tsCollector) HealthReport {
	out := HealthReport{
		Enabled:              true,
		Healthy:              rep.Healthy,
		Windows:              rep.Windows,
		TotalAnomalies:       col.anomalies.Load(),
		RecommendedMaxQueued: rep.RecommendedMaxQueued,
		Incidents:            r.incidents.Load(),
	}
	if len(rep.Anomalies) > 0 {
		out.Anomalies = make([]Anomaly, len(rep.Anomalies))
		for i, a := range rep.Anomalies {
			out.Anomalies[i] = Anomaly{
				Kind:   a.Kind,
				Detail: a.Detail,
				Value:  a.Value,
				Limit:  a.Limit,
				At:     time.Unix(0, a.WallNanos),
			}
		}
	}
	return out
}

// WriteHealth renders the current health report as JSON and reports
// whether the runtime is healthy — the obs.MuxConfig.Health callback
// behind /debug/health (200 when healthy, 503 when not).
func (r *Runtime) WriteHealth(w io.Writer) (healthy bool, err error) {
	rep := r.Health()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return rep.Healthy, enc.Encode(rep)
}

// WriteTimeSeries renders the retained metrics time series as JSON —
// the obs.MuxConfig.TimeSeries callback behind /debug/timeseries.
// With the collector disabled it renders an empty document.
func (r *Runtime) WriteTimeSeries(w io.Writer) error {
	col := r.collector
	if col == nil {
		_, err := io.WriteString(w, `{"interval_seconds":0,"history":0,"samples":0,"points":[]}`+"\n")
		return err
	}
	return col.ring.WriteJSON(w)
}

// errNoIncidentDir reports CaptureIncident without Config.IncidentDir.
var errNoIncidentDir = errors.New("mely: no IncidentDir configured")

// CaptureIncident synchronously captures one evidence bundle into a
// fresh timestamped subdirectory of Config.IncidentDir and returns its
// path: health.json (current report), timeseries.json (retained
// window), trace.json (flight recorder), and cpu.pprof (a bounded CPU
// profile burst). The profile step is skipped — the bundle still
// written — if another CPU profile is already running. Reason tags the
// directory name; it is sanitized to [a-z0-9-].
func (r *Runtime) CaptureIncident(reason string) (string, error) {
	return r.captureIncidentReport(reason, r.Health())
}

// captureIncidentReport writes the bundle with the given health report
// — the report the trigger fired under, which may already differ from
// a fresh evaluation by the time the bundle is written.
func (r *Runtime) captureIncidentReport(reason string, rep HealthReport) (string, error) {
	base := r.cfg.IncidentDir
	if base == "" {
		return "", errNoIncidentDir
	}
	stamp := time.Now().UTC().Format("20060102-150405.000000000")
	dir := filepath.Join(base, "incident-"+stamp+"-"+sanitizeReason(reason))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("mely: incident dir: %w", err)
	}
	writeFile := func(name string, render func(io.Writer) error) error {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		rerr := render(f)
		cerr := f.Close()
		if rerr != nil {
			return rerr
		}
		return cerr
	}
	var firstErr error
	note := func(err error) {
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	note(writeFile("health.json", func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}))
	note(writeFile("timeseries.json", r.WriteTimeSeries))
	note(writeFile("trace.json", r.DumpTrace))
	note(writeFile("cpu.pprof", func(w io.Writer) error {
		if err := pprof.StartCPUProfile(w); err != nil {
			// Another profile is running (e.g. an operator's
			// /debug/pprof/profile): keep the rest of the bundle.
			return nil
		}
		time.Sleep(r.incidentProfileDur())
		pprof.StopCPUProfile()
		return nil
	}))
	r.incidents.Add(1)
	return dir, firstErr
}

// incidentProfileDur bounds the profile burst: the obs interval
// clamped to [100ms, 1s], or 250ms when the collector is off (a
// stall-triggered capture on a collector-less runtime).
func (r *Runtime) incidentProfileDur() time.Duration {
	d := r.cfg.ObsInterval
	if d <= 0 {
		return 250 * time.Millisecond
	}
	if d < 100*time.Millisecond {
		d = 100 * time.Millisecond
	}
	if d > time.Second {
		d = time.Second
	}
	return d
}

// captureIncidentAsync is the rate-limited trigger path shared by the
// health collector and the stall watchdog: at most one capture in
// flight, at most one per Config.IncidentMinGap. Suppressed triggers
// are dropped (the episode is still counted in TotalAnomalies). rep
// is the report the trigger fired under; nil (the watchdog path, which
// has no evaluation of its own) takes a fresh out-of-band collector
// tick first, so the bundle still reflects the state at incident time
// — that tick's own anomaly dispatch is suppressed by incidentBusy.
func (r *Runtime) captureIncidentAsync(reason string, rep *HealthReport) {
	r.incidentMu.Lock()
	gap := r.cfg.IncidentMinGap
	if r.incidentBusy || (gap > 0 && !r.lastIncident.IsZero() && time.Since(r.lastIncident) < gap) {
		r.incidentMu.Unlock()
		return
	}
	r.incidentBusy = true
	r.lastIncident = time.Now()
	r.incidentMu.Unlock()
	go func() {
		if rep == nil {
			if col := r.collector; col != nil {
				r.collectTick(col)
			}
			hr := r.Health()
			rep = &hr
		}
		_, _ = r.captureIncidentReport(reason, *rep)
		r.incidentMu.Lock()
		r.incidentBusy = false
		r.incidentMu.Unlock()
	}()
}

// sanitizeReason maps an anomaly kind (or free-form reason) to a
// directory-name-safe slug.
func sanitizeReason(reason string) string {
	var b strings.Builder
	for _, c := range strings.ToLower(reason) {
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9', c == '-':
			b.WriteRune(c)
		default:
			b.WriteRune('-')
		}
	}
	s := strings.Trim(b.String(), "-")
	if s == "" {
		return "manual"
	}
	return s
}
