package mely

import (
	"context"
	"testing"
	"time"
)

// cumulativeTotals flattens the cumulative (documented-monotonic)
// counters of a snapshot into one comparable vector; gauges and
// estimates (Queued, Pending, TimersPending, QueuedEvents, SpilledNow,
// StealCostEstimate) are deliberately excluded — see the Stats doc
// table for the kind of every field.
func cumulativeTotals(s Stats) []int64 {
	t := s.Total()
	out := []int64{
		t.Events, int64(t.ExecTime),
		t.Steals, t.RemoteSteals, t.StealAttempts, t.FailedSteals, int64(t.StealTime),
		t.StolenEvents, int64(t.StolenTime), t.StolenColors,
		t.Parks, t.BackoffParks, t.PostedHere, t.BatchedEvents,
		t.ColorQueueChurns, t.Panics, t.TimersFired,
		s.TimersCanceled,
		s.PollWakeups, s.PollEvents, s.WriteStalls, s.ReadPauses,
		s.SpilledEvents, s.ReloadedEvents, s.RejectedPosts, s.BlockedPosts, s.SpillErrors,
		s.SpillSyncs, s.RecoveredEvents, s.TornRecords,
	}
	for _, b := range t.StealBatchHist {
		out = append(out, b)
	}
	for _, b := range t.TimerLagHist {
		out = append(out, b)
	}
	for _, b := range s.PollBatchHist {
		out = append(out, b)
	}
	for _, b := range s.SpillDepthHist {
		out = append(out, b)
	}
	return out
}

// TestStatsMonotonicity drives a bounded, spilling runtime through
// several bursts, snapshotting between them: every cumulative counter
// must be non-decreasing across snapshots (the documented contract the
// stats table promises to dashboards).
func TestStatsMonotonicity(t *testing.T) {
	r := newRuntime(t, Config{
		Cores:           2,
		MaxQueuedEvents: 16,
		OverloadPolicy:  OverloadSpill,
	})
	defer r.Close()
	h := r.Register("work", func(ctx *Ctx) { time.Sleep(2 * time.Microsecond) })
	hTick := r.Register("tick", func(ctx *Ctx) {})
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}

	prev := cumulativeTotals(r.Stats())
	for round := 0; round < 5; round++ {
		for i := 0; i < 300; i++ {
			if err := r.Post(h, Color(i%5), i); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := r.PostAfter(hTick, 1, time.Millisecond, nil); err != nil {
			t.Fatal(err)
		}
		if round == 2 {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			if err := r.Drain(ctx); err != nil {
				t.Fatal(err)
			}
			cancel()
		}
		cur := cumulativeTotals(r.Stats())
		for i := range cur {
			if cur[i] < prev[i] {
				t.Fatalf("round %d: cumulative counter %d went backwards: %d -> %d",
					round, i, prev[i], cur[i])
			}
		}
		prev = cur
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := r.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	final := cumulativeTotals(r.Stats())
	for i := range final {
		if final[i] < prev[i] {
			t.Fatalf("final snapshot: counter %d went backwards: %d -> %d", i, prev[i], final[i])
		}
	}
}
