package mely

import (
	"context"
	"testing"
	"time"
)

// cumulativeTotals flattens the cumulative (documented-monotonic)
// counters of a snapshot into one comparable vector; gauges and
// estimates (Queued, Pending, TimersPending, QueuedEvents, SpilledNow,
// StealCostEstimate) are deliberately excluded — see the Stats doc
// table for the kind of every field.
func cumulativeTotals(s Stats) []int64 {
	t := s.Total()
	out := []int64{
		t.Events, int64(t.ExecTime),
		t.Steals, t.RemoteSteals, t.StealAttempts, t.FailedSteals, int64(t.StealTime),
		t.StolenEvents, int64(t.StolenTime), t.StolenColors,
		t.Parks, t.BackoffParks, t.PostedHere, t.BatchedEvents,
		t.ColorQueueChurns, t.Panics, t.TimersFired,
		s.TimersCanceled,
		s.PollWakeups, s.PollEvents, s.WriteStalls, s.ReadPauses,
		s.SpilledEvents, s.SpilledBytes, s.ReloadedEvents, s.RejectedPosts, s.BlockedPosts, s.SpillErrors,
		s.SpillSyncs, s.RecoveredEvents, s.TornRecords,
	}
	for _, b := range t.StealBatchHist {
		out = append(out, b)
	}
	for _, b := range t.TimerLagHist {
		out = append(out, b)
	}
	for _, b := range s.PollBatchHist {
		out = append(out, b)
	}
	for _, b := range s.SpillDepthHist {
		out = append(out, b)
	}
	return out
}

// TestStatsMonotonicity drives a bounded, spilling runtime through
// several bursts, snapshotting between them: every cumulative counter
// must be non-decreasing across snapshots (the documented contract the
// stats table promises to dashboards).
func TestStatsMonotonicity(t *testing.T) {
	r := newRuntime(t, Config{
		Cores:           2,
		MaxQueuedEvents: 16,
		OverloadPolicy:  OverloadSpill,
	})
	defer r.Close()
	h := r.Register("work", func(ctx *Ctx) { time.Sleep(2 * time.Microsecond) })
	hTick := r.Register("tick", func(ctx *Ctx) {})
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}

	prev := cumulativeTotals(r.Stats())
	for round := 0; round < 5; round++ {
		for i := 0; i < 300; i++ {
			if err := r.Post(h, Color(i%5), i); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := r.PostAfter(hTick, 1, time.Millisecond, nil); err != nil {
			t.Fatal(err)
		}
		if round == 2 {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			if err := r.Drain(ctx); err != nil {
				t.Fatal(err)
			}
			cancel()
		}
		cur := cumulativeTotals(r.Stats())
		for i := range cur {
			if cur[i] < prev[i] {
				t.Fatalf("round %d: cumulative counter %d went backwards: %d -> %d",
					round, i, prev[i], cur[i])
			}
		}
		prev = cur
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := r.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	final := cumulativeTotals(r.Stats())
	for i := range final {
		if final[i] < prev[i] {
			t.Fatalf("final snapshot: counter %d went backwards: %d -> %d", i, prev[i], final[i])
		}
	}
}

// TestLatencySnapshotQuantileEdges pins the documented edge-case
// behavior of LatencySnapshot.Quantile: zero samples yield zero for
// any q; a single-bucket distribution reports that bucket's bound for
// every in-range q; q <= 0 clamps to the first observation; q > 1
// reports the overflow bucket's bound (MaxInt64 ns).
func TestLatencySnapshotQuantileEdges(t *testing.T) {
	var empty LatencySnapshot
	for _, q := range []float64{-1, 0, 0.5, 1, 2} {
		if got := empty.Quantile(q); got != 0 {
			t.Errorf("empty.Quantile(%v) = %v, want 0", q, got)
		}
	}

	var single LatencySnapshot
	single.Buckets[7] = 42
	want := LatencyBucketUpper(7)
	for _, q := range []float64{0.001, 0.5, 0.99, 1} {
		if got := single.Quantile(q); got != want {
			t.Errorf("single.Quantile(%v) = %v, want %v", q, got, want)
		}
	}
	// Out of range, low side: clamps to the first observation.
	for _, q := range []float64{0, -3} {
		if got := single.Quantile(q); got != want {
			t.Errorf("single.Quantile(%v) = %v, want %v", q, got, want)
		}
	}
	// Out of range, high side: nothing crosses the inflated target —
	// the unbounded last bucket reads as "slower than everything".
	if got, over := single.Quantile(1.5), LatencyBucketUpper(LatencyBuckets-1); got != over {
		t.Errorf("single.Quantile(1.5) = %v, want %v", got, over)
	}

	// A spread distribution: p99 stays in the dense bucket, p100 finds
	// the straggler.
	var spread LatencySnapshot
	spread.Buckets[3] = 99
	spread.Buckets[20] = 1
	if got := spread.Quantile(0.99); got != LatencyBucketUpper(3) {
		t.Errorf("spread.Quantile(0.99) = %v, want %v", got, LatencyBucketUpper(3))
	}
	if got := spread.Quantile(1); got != LatencyBucketUpper(20) {
		t.Errorf("spread.Quantile(1) = %v, want %v", got, LatencyBucketUpper(20))
	}
}
