package mely

import (
	"sort"
	"time"

	"github.com/melyruntime/mely/internal/obs"
)

// LatencyBuckets is the length of the power-of-two latency histograms
// (CoreStats.QueueDelayHist / ExecTimeHist): bucket 0 holds durations
// below 256ns, bucket i holds [2^(i+7), 2^(i+8)) ns, and the last
// bucket everything from ~17s up. LatencyBucketUpper reports the
// boundaries.
const LatencyBuckets = obs.NumLatencyBuckets

// LatencyBucketUpper is the exclusive upper bound of latency-histogram
// bucket i (the last bucket is unbounded and reports math.MaxInt64 ns).
func LatencyBucketUpper(i int) time.Duration {
	return time.Duration(obs.LatencyUpperNanos(i))
}

// LatencySnapshot is a sampled latency distribution: power-of-two
// buckets plus the sum of the observed durations. Populated only when
// Config.ObsSampleRate is not negative, from one in every
// ObsSampleRate events.
type LatencySnapshot struct {
	Buckets [LatencyBuckets]int64
	Sum     time.Duration
}

// Count is the number of sampled observations.
func (l LatencySnapshot) Count() int64 {
	var n int64
	for _, c := range l.Buckets {
		n += c
	}
	return n
}

// Quantile reports the q-quantile (0 < q <= 1) as the upper bound of
// the bucket where the cumulative count crosses q — a conservative
// (pessimistic) estimate with power-of-two resolution. Zero when
// nothing was sampled.
func (l LatencySnapshot) Quantile(q float64) time.Duration {
	return obs.Quantile(&l.Buckets, q)
}

// merge folds another snapshot into l.
func (l *LatencySnapshot) merge(o LatencySnapshot) {
	for b := range l.Buckets {
		l.Buckets[b] += o.Buckets[b]
	}
	l.Sum += o.Sum
}

// ColorDelay is one color's sampled queue-delay attribution: how many
// sampled events of the color were observed and their summed
// post-to-execution delay. The per-core tables track the top
// ColorTopK most-frequently-sampled colors with a space-saving
// (Misra-Gries-style) eviction, so the attribution is approximate
// under adversarial color churn but exact for a stable hot set.
type ColorDelay struct {
	Color   Color
	Samples int64
	Delay   time.Duration
}

// Mean is the color's mean sampled queue delay.
func (c ColorDelay) Mean() time.Duration {
	if c.Samples == 0 {
		return 0
	}
	return c.Delay / time.Duration(c.Samples)
}

// ColorTopK is the per-core capacity of the sampled per-color
// queue-delay attribution table (CoreStats.TopColorDelays).
const ColorTopK = 8

// StealBatchBuckets is the length of the steal batch-size histogram in
// CoreStats.StealBatchHist; see that field for the bucket boundaries.
const StealBatchBuckets = 6

// stealBatchBucket maps a steal's color count to its histogram bucket:
// 1, 2, 3–4, 5–8, 9–16, ≥17.
func stealBatchBucket(n int) int {
	switch {
	case n <= 1:
		return 0
	case n == 2:
		return 1
	case n <= 4:
		return 2
	case n <= 8:
		return 3
	case n <= 16:
		return 4
	default:
		return 5
	}
}

// TimerLagBuckets is the length of the firing-lag histogram in
// CoreStats.TimerLagHist; see that field for the bucket boundaries.
const TimerLagBuckets = 6

// timerLagBucket maps a firing lag (harvest time minus deadline) to its
// histogram bucket: ≤100µs, ≤1ms, ≤2ms, ≤10ms, ≤100ms, >100ms.
func timerLagBucket(lagNanos int64) int {
	switch {
	case lagNanos <= 100_000:
		return 0
	case lagNanos <= 1_000_000:
		return 1
	case lagNanos <= 2_000_000:
		return 2
	case lagNanos <= 10_000_000:
		return 3
	case lagNanos <= 100_000_000:
		return 4
	default:
		return 5
	}
}

// PollBatchBuckets is the length of the poll batch-size histogram in
// Stats.PollBatchHist; see that field for the bucket boundaries.
const PollBatchBuckets = 6

// PollBatchBucket maps a poll wakeup's harvested-event count to its
// histogram bucket: ≤1, 2–4, 5–16, 17–64, 65–256, >256. Exported so
// readiness backends (internal/netpoll) bin with the same boundaries
// Stats reports.
func PollBatchBucket(n int) int {
	switch {
	case n <= 1:
		return 0
	case n <= 4:
		return 1
	case n <= 16:
		return 2
	case n <= 64:
		return 3
	case n <= 256:
		return 4
	default:
		return 5
	}
}

// PollSample is one readiness-event source's counter snapshot (see
// Runtime.AddPollSource). Network backends that own their poll loop —
// netpoll's epoll reactor shards — report through this so Stats shows
// how efficiently readiness is being harvested.
type PollSample struct {
	// Wakeups counts returns from the poll wait; Events counts
	// readiness events harvested across them. Events/Wakeups is the
	// amortization factor of the batch harvest.
	Wakeups int64
	Events  int64
	// BatchHist bins the events-per-wakeup batch sizes (see
	// PollBatchBucket for the boundaries).
	BatchHist [PollBatchBuckets]int64
	// WriteStalls counts writes that filled the kernel buffer and fell
	// back to the pending-write queue (drained on writability under the
	// connection's color).
	WriteStalls int64
	// ReadPauses counts connections whose read readiness was paused
	// because their data color was saturated (Runtime.Saturated) — the
	// read-backpressure edge of the overload-control layer; each pause
	// is counted once per pause episode, not per skipped event.
	ReadPauses int64
}

// add folds another sample into s.
func (s *PollSample) add(o PollSample) {
	s.Wakeups += o.Wakeups
	s.Events += o.Events
	for b := range s.BatchHist {
		s.BatchHist[b] += o.BatchHist[b]
	}
	s.WriteStalls += o.WriteStalls
	s.ReadPauses += o.ReadPauses
}

// CoreStats is a snapshot of one worker's counters.
type CoreStats struct {
	// Events executed on this core and their total handler time.
	Events   int64
	ExecTime time.Duration
	// Steals performed by this core (RemoteSteals crossed a cache
	// boundary); FailedSteals found nothing; StealTime is the total
	// time spent in successful steal transactions.
	Steals        int64
	RemoteSteals  int64
	StealAttempts int64
	FailedSteals  int64
	StealTime     time.Duration
	// StolenEvents executed here after migration, and their time (the
	// paper's "stolen time").
	StolenEvents int64
	StolenTime   time.Duration
	// StolenColors counts colors migrated here by this core's steals:
	// equal to Steals under the single-color protocol, larger when
	// batch stealing migrates several colors per attempt.
	// StealBatchHist is the batch-size histogram of those steals, with
	// buckets 1, 2, 3–4, 5–8, 9–16, ≥17 colors.
	StolenColors   int64
	StealBatchHist [StealBatchBuckets]int64
	// Parks counts idle sleeps; BackoffParks the subset shortened by
	// the steal-throttling backoff (see Config.StealBackoff);
	// PostedHere counts enqueues landing on this core; BatchedEvents
	// counts the subset delivered through PostBatch's
	// one-lock-per-core path; ColorQueueChurns counts ColorQueue
	// link/unlink pairs (the short-lived color overhead of section
	// V-C1).
	Parks            int64
	BackoffParks     int64
	PostedHere       int64
	BatchedEvents    int64
	ColorQueueChurns int64
	// Panics counts handler panics contained by the worker.
	Panics int64
	// Stalls counts stall-watchdog episodes on this core: handlers that
	// executed past Config.StallThreshold (0 with the watchdog off).
	Stalls int64
	// Queued is the instantaneous queue length.
	Queued int
	// TimersFired counts timers this core's wheel expired; TimerLagHist
	// is the firing-lag histogram (harvest time minus deadline) with
	// buckets ≤100µs, ≤1ms, ≤2ms, ≤10ms, ≤100ms, >100ms — the structural
	// floor is Config.TimerTick plus the park latency of an idle core.
	TimersFired  int64
	TimerLagHist [TimerLagBuckets]int64
	// TimersPending is the instantaneous number of armed timers on this
	// core's wheel.
	TimersPending int
	// QueueDelayHist is the sampled post-to-execution delay
	// distribution of events executed on this core, and ExecTimeHist
	// the sampled handler execution times, both in power-of-two buckets
	// (see LatencyBuckets). Empty when Config.ObsSampleRate is
	// negative. TopColorDelays attributes the sampled queue delay to
	// the core's hottest colors (up to ColorTopK entries, most-sampled
	// first).
	QueueDelayHist LatencySnapshot
	ExecTimeHist   LatencySnapshot
	TopColorDelays []ColorDelay
}

// MeanStealBatch is the average number of colors migrated per
// successful steal (0 when no steals happened).
func (c CoreStats) MeanStealBatch() float64 {
	if c.Steals == 0 {
		return 0
	}
	return float64(c.StolenColors) / float64(c.Steals)
}

// Stats is a whole-runtime snapshot.
//
// Every counter below is CUMULATIVE and MONOTONIC across Snapshot
// calls on one runtime — later snapshots never report smaller values —
// except the rows marked "gauge" (instantaneous, free to move both
// ways) and "estimate". Per-core counters are individually atomic but
// not mutually consistent. The full inventory:
//
//	field                     kind       meaning
//	------------------------  ---------  ----------------------------------------
//	Cores[i].Events           counter    events executed on core i
//	Cores[i].ExecTime         counter    total handler time
//	Cores[i].Steals           counter    successful steals by this core
//	Cores[i].RemoteSteals     counter    steals crossing a cache boundary
//	Cores[i].StealAttempts    counter    steal probes (incl. failures)
//	Cores[i].FailedSteals     counter    probes that found nothing
//	Cores[i].StealTime        counter    time in successful steal transactions
//	Cores[i].StolenEvents     counter    migrated events executed here
//	Cores[i].StolenTime       counter    their handler time ("stolen time")
//	Cores[i].StolenColors     counter    colors migrated here by steals
//	Cores[i].StealBatchHist   histogram  colors per steal: 1,2,3–4,5–8,9–16,≥17
//	Cores[i].Parks            counter    idle sleeps
//	Cores[i].BackoffParks     counter    parks shortened by steal backoff
//	Cores[i].PostedHere       counter    enqueues landing on this core
//	Cores[i].BatchedEvents    counter    subset delivered via PostBatch groups
//	Cores[i].ColorQueueChurns counter    ColorQueue link/unlink pairs
//	Cores[i].Panics           counter    handler panics contained
//	Cores[i].Stalls           counter    stall-watchdog episodes on this core
//	Cores[i].Queued           gauge      instantaneous core queue length
//	Cores[i].TimersFired      counter    timers expired by this core's wheel
//	Cores[i].TimerLagHist     histogram  firing lag: ≤100µs,≤1ms,≤2ms,≤10ms,≤100ms,>100ms
//	Cores[i].TimersPending    gauge      armed timers on this core's wheel
//	Cores[i].QueueDelayHist   histogram  sampled post→execute delay (power-of-two)
//	Cores[i].ExecTimeHist     histogram  sampled handler time (power-of-two)
//	Cores[i].TopColorDelays   estimate   top-K per-color sampled delay attribution
//	StealCostEstimate         estimate   monitored cost of one steal
//	Pending                   gauge      posted-but-not-completed events
//	StalledCores              gauge      cores currently stuck past StallThreshold
//	TimersCanceled            counter    firings averted by Cancel
//	PollWakeups               counter    poll wait returns (all sources)
//	PollEvents                counter    readiness events harvested
//	PollBatchHist             histogram  events/wakeup: ≤1,2–4,5–16,17–64,65–256,>256
//	WriteStalls               counter    writes queued on kernel backpressure
//	ReadPauses                counter    read pauses on saturated data colors
//	QueuedEvents              gauge      in-memory queued events, runtime-wide
//	SpilledEvents             counter    events appended to the spill store
//	SpilledBytes              counter    bytes appended to the spill store
//	                                     (headers + payloads, this process)
//	ReloadedEvents            counter    events reloaded from the spill store
//	SpilledNow                gauge      events currently on disk
//	RejectedPosts             counter    posts failed with ErrOverloaded
//	BlockedPosts              counter    posts that waited under OverloadBlock
//	SpillErrors               counter    spill fallbacks (unencodable payload
//	                                     or disk failure; event kept in memory,
//	                                     or — reload failure only — dropped)
//	SpillDepthHist            histogram  disk depth at spill: ≤16,≤64,≤256,≤1k,≤4k,>4k
//	SpillSyncs                counter    msync/fsync durability points issued by
//	                                     the spill store (Config.SpillSync)
//	RecoveredEvents           counter    spilled events recovered from surviving
//	                                     segments at startup (Config.SpillRecover;
//	                                     set once at New, constant afterwards)
//	TornRecords               counter    torn segment tails truncated (or unusable
//	                                     segments discarded) during that recovery
type Stats struct {
	Cores []CoreStats
	// StealCostEstimate is the monitored cost of one steal, the
	// threshold the time-left heuristic steals against.
	StealCostEstimate time.Duration
	// Pending counts posted-but-not-completed events.
	Pending int64
	// StalledCores is the number of cores currently stuck in a handler
	// past Config.StallThreshold, as of the watchdog's last check (0
	// with the watchdog off).
	StalledCores int
	// TimersCanceled counts timer firings averted by Cancel, runtime
	// wide (a cancel is not attributable to one core: the entry may
	// have migrated between wheels since it was armed).
	TimersCanceled int64
	// PollWakeups, PollEvents, PollBatchHist, WriteStalls, and
	// ReadPauses aggregate every registered readiness source
	// (Runtime.AddPollSource): poll wait returns, events harvested, the
	// events-per-wakeup histogram (buckets ≤1, 2–4, 5–16, 17–64,
	// 65–256, >256), writes that hit kernel backpressure and were
	// queued for EPOLLOUT-driven draining, and reads paused because the
	// connection's data color was saturated. All zero when no source is
	// registered (e.g. the pump backend without overload bounds).
	PollWakeups   int64
	PollEvents    int64
	PollBatchHist [PollBatchBuckets]int64
	WriteStalls   int64
	ReadPauses    int64

	// Overload-control counters, all zero on unbounded runtimes.
	// QueuedEvents is the in-memory queued-event gauge the bounds are
	// enforced against; SpilledNow is the on-disk backlog gauge.
	// SpilledEvents/ReloadedEvents count traffic through the spill
	// store (equal once a burst has fully drained); RejectedPosts and
	// BlockedPosts count the Reject and Block policies' interventions;
	// SpillErrors counts spill fallbacks (unencodable payloads and disk
	// failures); SpillDepthHist bins each spilled record's observed
	// per-color disk depth (buckets ≤16, ≤64, ≤256, ≤1024, ≤4096,
	// >4096) — the distribution of how deep the tails run.
	QueuedEvents   int64
	SpilledEvents  int64
	SpilledBytes   int64
	ReloadedEvents int64
	SpilledNow     int64
	RejectedPosts  int64
	BlockedPosts   int64
	SpillErrors    int64
	SpillDepthHist [SpillDepthBuckets]int64

	// Spill durability counters (Config.SpillSync / SpillRecover).
	// SpillSyncs counts the store's msync/fsync durability points;
	// RecoveredEvents is the backlog recovered from surviving segments
	// at New (constant afterwards); TornRecords counts the torn tails
	// recovery truncated (or unusable segments it discarded) getting
	// there — a nonzero value means the previous process died inside
	// an unsynced append, which is exactly the loss window the
	// configured SpillSyncPolicy promises.
	SpillSyncs      int64
	RecoveredEvents int64
	TornRecords     int64
}

// Stats snapshots the runtime's counters. It is safe while running;
// per-core numbers are individually atomic but not mutually consistent.
func (r *Runtime) Stats() Stats {
	s := Stats{
		Cores:             make([]CoreStats, len(r.cores)),
		StealCostEstimate: time.Duration(r.stealMon.Estimate()),
		Pending:           r.pending.Load(),
		StalledCores:      int(r.stalledCores.Load()),
		TimersCanceled:    r.timersCanceled.Load(),
	}
	r.pollMu.Lock()
	poll := r.pollRetired
	sources := make([]func() PollSample, 0, len(r.pollSources))
	for _, sample := range r.pollSources {
		sources = append(sources, sample)
	}
	r.pollMu.Unlock()
	for _, sample := range sources {
		poll.add(sample())
	}
	s.PollWakeups = poll.Wakeups
	s.PollEvents = poll.Events
	s.PollBatchHist = poll.BatchHist
	s.WriteStalls = poll.WriteStalls
	s.ReadPauses = poll.ReadPauses
	if a := r.adm; a != nil {
		s.QueuedEvents = a.queued.Load()
		s.SpilledEvents = a.spilled.Load()
		s.ReloadedEvents = a.reloaded.Load()
		s.RejectedPosts = a.rejected.Load()
		s.BlockedPosts = a.blocked.Load()
		s.SpillErrors = a.spillErrs.Load()
		if a.store != nil {
			s.SpilledNow = a.store.TotalDepth()
			s.SpilledBytes = a.store.AppendedBytes()
			s.SpillSyncs = a.store.Syncs()
			s.RecoveredEvents = a.store.Recovered()
			s.TornRecords = a.store.Torn()
		}
		for b := range s.SpillDepthHist {
			s.SpillDepthHist[b] = a.depthHist[b].Load()
		}
	}
	for i, c := range r.cores {
		cs := CoreStats{
			Events:           c.stats.events.Load(),
			ExecTime:         time.Duration(c.stats.execNanos.Load()),
			Steals:           c.stats.steals.Load(),
			RemoteSteals:     c.stats.remoteSteals.Load(),
			StealAttempts:    c.stats.stealAttempts.Load(),
			FailedSteals:     c.stats.failedSteals.Load(),
			StealTime:        time.Duration(c.stats.stealNanos.Load()),
			StolenEvents:     c.stats.stolenEvents.Load(),
			StolenTime:       time.Duration(c.stats.stolenExecNanos.Load()),
			StolenColors:     c.stats.stolenColors.Load(),
			Parks:            c.stats.parks.Load(),
			BackoffParks:     c.stats.backoffParks.Load(),
			PostedHere:       c.stats.postedHere.Load(),
			BatchedEvents:    c.stats.batchedEvents.Load(),
			ColorQueueChurns: c.stats.colorQueueChurns.Load(),
			Panics:           c.stats.panics.Load(),
			Stalls:           c.stats.stalls.Load(),
			Queued:           int(c.qlen.Load()),
			TimersFired:      c.stats.timersFired.Load(),
			TimersPending:    c.wheel.Len(),
		}
		for b := range cs.StealBatchHist {
			cs.StealBatchHist[b] = c.stats.batchHist[b].Load()
		}
		for b := range cs.TimerLagHist {
			cs.TimerLagHist[b] = c.stats.timerLagHist[b].Load()
		}
		cs.QueueDelayHist.Sum = time.Duration(c.stats.qdelayHist.Load(&cs.QueueDelayHist.Buckets))
		cs.ExecTimeHist.Sum = time.Duration(c.stats.execTimeHist.Load(&cs.ExecTimeHist.Buckets))
		cs.TopColorDelays = c.colorDelays.snapshot()
		s.Cores[i] = cs
	}
	if r.adm == nil {
		// Unbounded runtimes have no admission gauge; sum the per-core
		// mirrors so QueuedEvents is meaningful everywhere.
		var q int64
		for i := range s.Cores {
			q += int64(s.Cores[i].Queued)
		}
		s.QueuedEvents = q
	}
	return s
}

// Total sums the per-core snapshots.
func (s Stats) Total() CoreStats {
	var t CoreStats
	for _, c := range s.Cores {
		t.Events += c.Events
		t.ExecTime += c.ExecTime
		t.Steals += c.Steals
		t.RemoteSteals += c.RemoteSteals
		t.StealAttempts += c.StealAttempts
		t.FailedSteals += c.FailedSteals
		t.StealTime += c.StealTime
		t.StolenEvents += c.StolenEvents
		t.StolenTime += c.StolenTime
		t.StolenColors += c.StolenColors
		for b := range c.StealBatchHist {
			t.StealBatchHist[b] += c.StealBatchHist[b]
		}
		t.Parks += c.Parks
		t.BackoffParks += c.BackoffParks
		t.PostedHere += c.PostedHere
		t.BatchedEvents += c.BatchedEvents
		t.ColorQueueChurns += c.ColorQueueChurns
		t.Panics += c.Panics
		t.Stalls += c.Stalls
		t.Queued += c.Queued
		t.TimersFired += c.TimersFired
		for b := range c.TimerLagHist {
			t.TimerLagHist[b] += c.TimerLagHist[b]
		}
		t.TimersPending += c.TimersPending
		t.QueueDelayHist.merge(c.QueueDelayHist)
		t.ExecTimeHist.merge(c.ExecTimeHist)
		t.TopColorDelays = append(t.TopColorDelays, c.TopColorDelays...)
	}
	t.TopColorDelays = mergeColorDelays(t.TopColorDelays)
	return t
}

// mergeColorDelays folds per-core attribution rows for the same color
// together and orders the result most-sampled first.
func mergeColorDelays(rows []ColorDelay) []ColorDelay {
	if len(rows) == 0 {
		return nil
	}
	byColor := make(map[Color]ColorDelay, len(rows))
	for _, row := range rows {
		agg := byColor[row.Color]
		agg.Color = row.Color
		agg.Samples += row.Samples
		agg.Delay += row.Delay
		byColor[row.Color] = agg
	}
	out := make([]ColorDelay, 0, len(byColor))
	for _, row := range byColor {
		out = append(out, row)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Samples != out[j].Samples {
			return out[i].Samples > out[j].Samples
		}
		return out[i].Color < out[j].Color
	})
	return out
}
