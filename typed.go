package mely

// TypedHandler is a Handler whose events carry payloads of a single
// static type T. Obtain one with RegisterTyped; posting through it needs
// no any-boxing discipline at the call site and the handler body reads
// its payload without a type assertion. A TypedHandler is layered over
// the untyped core: Untyped exposes the plain Handler for mixing with
// Post, PostBatch, and handler tables.
type TypedHandler[T any] struct {
	r *Runtime
	h Handler
}

// RegisterTyped adds a handler whose payload is statically typed. It is
// the typed layer over Runtime.Register and accepts the same options
// (WithPenalty, WithCostEstimate); like Register it may be called at any
// time, including while the runtime runs.
//
// Events posted through the returned TypedHandler (or with its Event
// entries via PostBatch) always carry a T. If an event reaches the
// handler through the untyped Handler with a payload that is not a T,
// the handler sees T's zero value — the typed layer never panics on a
// foreign payload.
func RegisterTyped[T any](r *Runtime, name string, fn func(ctx *TypedCtx[T]), opts ...HandlerOption) TypedHandler[T] {
	h := r.Register(name, func(ctx *Ctx) {
		tc := TypedCtx[T]{Ctx: ctx}
		tc.data, _ = ctx.Data().(T)
		fn(&tc)
	}, opts...)
	return TypedHandler[T]{r: r, h: h}
}

// Untyped returns the plain Handler identity, for use with the untyped
// Post/PostBatch APIs or storage in heterogeneous handler tables.
func (th TypedHandler[T]) Untyped() Handler { return th.h }

// Post posts one event for this handler under the given color.
func (th TypedHandler[T]) Post(color Color, data T) error {
	return th.r.Post(th.h, color, data)
}

// Event builds a PostBatch entry for this handler, keeping batch
// construction typed:
//
//	batch = append(batch, decode.Event(conn.Color(), frame))
//	...
//	rt.PostBatch(batch)
func (th TypedHandler[T]) Event(color Color, data T) BatchEvent {
	return BatchEvent{Handler: th.h, Color: color, Data: data}
}

// TypedCtx is the execution context of a typed handler. It embeds the
// untyped Ctx — Post, PostBatch, Color, CoreID, Stolen, and Runtime are
// all available — and shadows Data with the typed payload.
type TypedCtx[T any] struct {
	*Ctx
	data T
}

// Data returns the event's payload as a T, with no assertion at the
// call site.
func (c *TypedCtx[T]) Data() T { return c.data }
