package mely

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/melyruntime/mely/internal/equeue"
)

// waitFor polls cond (with a parked sleep) until it holds or the
// deadline expires.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestPostAfterFires(t *testing.T) {
	r := startRuntime(t, Config{Cores: 2})
	var (
		fired atomic.Int64
		got   atomic.Value
	)
	h := r.Register("expire", func(ctx *Ctx) {
		got.Store([2]any{ctx.Color(), ctx.Data()})
		fired.Add(1)
	})
	start := time.Now()
	tm, err := r.PostAfter(h, Color(42), 20*time.Millisecond, "payload")
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, "timer to fire", func() bool { return fired.Load() == 1 })
	if elapsed := time.Since(start); elapsed < 20*time.Millisecond {
		t.Fatalf("timer fired %v early", 20*time.Millisecond-elapsed)
	}
	pair := got.Load().([2]any)
	if pair[0].(Color) != 42 || pair[1].(string) != "payload" {
		t.Fatalf("expiry saw color=%v data=%v", pair[0], pair[1])
	}
	waitFor(t, 10*time.Second, "handle to retire", tm.Fired)
	if tm.Cancel() {
		t.Fatal("Cancel after firing must report false")
	}
	st := r.Stats()
	if st.Total().TimersFired != 1 {
		t.Fatalf("TimersFired = %d, want 1", st.Total().TimersFired)
	}
	var hist int64
	for _, n := range st.Total().TimerLagHist {
		hist += n
	}
	if hist != 1 {
		t.Fatalf("lag histogram holds %d entries, want 1", hist)
	}
}

func TestPostAtAndValidation(t *testing.T) {
	r := startRuntime(t, Config{Cores: 1})
	var fired atomic.Int64
	h := r.Register("at", func(ctx *Ctx) { fired.Add(1) })
	if _, err := r.PostAt(h, 1, time.Now().Add(10*time.Millisecond), nil); err != nil {
		t.Fatal(err)
	}
	// A past deadline clamps to "now" rather than failing.
	if _, err := r.PostAt(h, 1, time.Now().Add(-time.Hour), nil); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, "both PostAt timers", func() bool { return fired.Load() == 2 })

	if _, err := r.PostEvery(h, 1, 0, nil); err == nil {
		t.Fatal("PostEvery with zero interval must fail")
	}
	if _, err := r.PostAfter(Handler{}, 1, time.Millisecond, nil); err == nil {
		t.Fatal("PostAfter with the zero handler must fail")
	}
}

func TestPostAfterAfterStop(t *testing.T) {
	r := newRuntime(t, Config{Cores: 1})
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	h := r.Register("never", func(ctx *Ctx) {})
	r.Stop()
	if _, err := r.PostAfter(h, 1, time.Millisecond, nil); !errors.Is(err, ErrStopped) {
		t.Fatalf("PostAfter after Stop = %v, want ErrStopped", err)
	}
}

func TestPostEveryPeriodicAndCancel(t *testing.T) {
	r := startRuntime(t, Config{Cores: 2})
	var ticks atomic.Int64
	h := r.Register("tick", func(ctx *Ctx) { ticks.Add(1) })
	tm, err := r.PostEvery(h, Color(9), 10*time.Millisecond, nil)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, "at least 5 periodic firings", func() bool { return ticks.Load() >= 5 })
	if !tm.Cancel() {
		t.Fatal("Cancel of a live periodic timer must succeed")
	}
	after := ticks.Load()
	time.Sleep(60 * time.Millisecond)
	// One occurrence may have been mid-flight at cancel time; none after.
	if got := ticks.Load(); got > after+1 {
		t.Fatalf("periodic fired %d times after cancel", got-after)
	}
	if r.Stats().TimersCanceled != 1 {
		t.Fatalf("TimersCanceled = %d, want 1", r.Stats().TimersCanceled)
	}
}

func TestTimerReset(t *testing.T) {
	r := startRuntime(t, Config{Cores: 1})
	var fired atomic.Int64
	h := r.Register("reset", func(ctx *Ctx) { fired.Add(1) })
	tm, err := r.PostAfter(h, 3, 30*time.Millisecond, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Keep-alive: push the deadline out a few times, then let it fire.
	for i := 0; i < 3; i++ {
		time.Sleep(10 * time.Millisecond)
		if !tm.Reset(30 * time.Millisecond) {
			t.Fatalf("Reset %d of an armed timer failed", i)
		}
	}
	if fired.Load() != 0 {
		t.Fatal("timer fired despite keep-alive resets")
	}
	waitFor(t, 10*time.Second, "reset timer to fire", func() bool { return fired.Load() == 1 })
	if tm.Reset(time.Millisecond) {
		t.Fatal("Reset of a fired one-shot must report false")
	}
	time.Sleep(20 * time.Millisecond)
	if fired.Load() != 1 {
		t.Fatal("failed Reset still re-armed the timer")
	}
}

// TestTimerCancelRacingExpiry is the exact-once contract under fire:
// for every timer, exactly one of {handler ran, Cancel returned true}.
func TestTimerCancelRacingExpiry(t *testing.T) {
	r := startRuntime(t, Config{Cores: 4, TimerTick: time.Millisecond})
	const n = 2000
	ran := make([]atomic.Int32, n)
	h := r.Register("race", func(ctx *Ctx) {
		if ran[ctx.Data().(int)].Add(1) != 1 {
			t.Error("timer handler ran twice")
		}
	})
	timers := make([]*Timer, n)
	for i := 0; i < n; i++ {
		tm, err := r.PostAfter(h, Color(i%37+1), time.Duration(i%4)*time.Millisecond, i)
		if err != nil {
			t.Fatal(err)
		}
		timers[i] = tm
	}
	canceled := make([]bool, n)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g; i < n; i += 4 {
				canceled[i] = timers[i].Cancel()
			}
		}(g)
	}
	wg.Wait()
	drain(t, r)
	// Let any in-flight deliveries land before the final audit.
	waitFor(t, 10*time.Second, "all survivors to run", func() bool {
		for i := range timers {
			if !canceled[i] && ran[i].Load() == 0 {
				return false
			}
		}
		return true
	})
	for i := range timers {
		if canceled[i] && ran[i].Load() != 0 {
			t.Fatalf("timer %d both canceled and ran", i)
		}
	}
	st := r.Stats()
	total := st.Total().TimersFired + st.TimersCanceled
	if total != n {
		t.Fatalf("fired %d + canceled %d != %d", st.Total().TimersFired, st.TimersCanceled, n)
	}
}

// TestTimerCallbackSerializedWithEvents is the tentpole invariant: a
// timer callback for color C never runs concurrently with an event of
// color C — no user locking, ever. Run with -race; steal-heavy config.
func TestTimerCallbackSerializedWithEvents(t *testing.T) {
	r := startRuntime(t, Config{Cores: 4, Policy: PolicyMelyWS, TimerTick: time.Millisecond})
	const colors = 8
	var (
		inFlight [colors]atomic.Int32
		state    [colors]int // unsynchronized: the serialization IS the lock
		events   atomic.Int64
	)
	body := func(ctx *Ctx) {
		idx := ctx.Data().(int)
		if inFlight[idx].Add(1) != 1 {
			t.Error("same-color timer callback and event ran concurrently")
		}
		state[idx]++
		inFlight[idx].Add(-1)
		events.Add(1)
	}
	hEvent := r.Register("event", body)
	hTimer := r.Register("timer", body)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for p := 0; p < 3; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				idx := (p + i) % colors
				if err := r.Post(hEvent, Color(idx+1), idx); err != nil {
					return
				}
				if i%8 == 0 {
					if _, err := r.PostAfter(hTimer, Color(idx+1), time.Duration(i%3)*time.Millisecond, idx); err != nil {
						return
					}
				}
			}
		}(p)
	}
	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()
	drain(t, r)
	if events.Load() == 0 {
		t.Fatal("workload executed nothing")
	}
}

// TestTimersSurviveStealMigration pins a color-affine timer behind a
// steal: core 0's worker is blocked on one color while a backlog of
// other colors (with pending timers) accumulates there; the idle core
// steals the backlog — and the timers must migrate with their colors
// and still fire exactly once.
func TestTimersSurviveStealMigration(t *testing.T) {
	r := startRuntime(t, Config{Cores: 2, Policy: PolicyMelyWS, TimerTick: time.Millisecond})
	release := make(chan struct{})
	hBlock := r.Register("block", func(ctx *Ctx) { <-release })
	var fired atomic.Int64
	ran := make(map[int]*atomic.Int32)
	hWork := r.Register("work", func(ctx *Ctx) { time.Sleep(200 * time.Microsecond) },
		WithCostEstimate(5*time.Millisecond))
	hTimer := r.Register("timer", func(ctx *Ctx) {
		ran[ctx.Data().(int)].Add(1)
		fired.Add(1)
	})

	cols := colorsOn(r, 0, 5)
	blocker := cols[0]
	victims := cols[1:]
	if err := r.Post(hBlock, blocker, nil); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, "blocker to occupy core 0", func() bool {
		c := r.cores[0]
		c.lock.Lock()
		running := c.hasRunning && c.running == equeue.Color(blocker)
		c.lock.Unlock()
		return running
	})
	// Backlog plus timers on the victim colors, all homed on core 0.
	for i := range victims {
		ran[i] = new(atomic.Int32) // complete the map before any timer can fire
	}
	for i, col := range victims {
		for j := 0; j < 20; j++ {
			if err := r.Post(hWork, col, j); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := r.PostAfter(hTimer, col, 40*time.Millisecond, i); err != nil {
			t.Fatal(err)
		}
	}
	// The idle core 1 must batch-steal the worthy victim colors.
	waitFor(t, 10*time.Second, "a steal to happen", func() bool {
		return r.Stats().Cores[1].Steals > 0
	})
	close(release)
	waitFor(t, 10*time.Second, "all migrated timers to fire", func() bool {
		return fired.Load() == int64(len(victims))
	})
	for i := range victims {
		if got := ran[i].Load(); got != 1 {
			t.Fatalf("timer %d fired %d times, want exactly 1", i, got)
		}
	}
	if st := r.Stats().Cores[1]; st.StolenColors == 0 {
		t.Fatalf("no colors migrated; steal stats: %+v", st)
	}
	drain(t, r)
}

// TestTimerMigrationWhitebox drives the two migration hooks directly
// (no scheduling timing involved): a steal moves a set of colors'
// entries between wheels, a re-home moves one color's entries back.
func TestTimerMigrationWhitebox(t *testing.T) {
	r := newRuntime(t, Config{Cores: 2}) // never started: wheels stay put
	h := r.Register("noop", func(ctx *Ctx) {})
	cols := colorsOn(r, 0, 3)
	for _, col := range cols {
		if _, err := r.PostAfter(h, col, time.Hour, nil); err != nil {
			t.Fatal(err)
		}
	}
	home, thief := r.cores[0], r.cores[1]
	if home.wheel.Len() != 3 || thief.wheel.Len() != 0 {
		t.Fatalf("arming landed %d/%d, want 3/0", home.wheel.Len(), thief.wheel.Len())
	}
	ecols := []equeue.Color{equeue.Color(cols[0]), equeue.Color(cols[1])}
	r.migrateTimersOnSteal(thief, home, ecols)
	if home.wheel.Len() != 1 || thief.wheel.Len() != 2 {
		t.Fatalf("steal migrated %d/%d, want 1/2", home.wheel.Len(), thief.wheel.Len())
	}
	if !thief.wheel.HasColor(ecols[0]) || !thief.wheel.HasColor(ecols[1]) {
		t.Fatal("thief wheel missing migrated colors")
	}
	r.migrateTimersOnReHome(thief, ecols[0], 0)
	if !home.wheel.HasColor(ecols[0]) || thief.wheel.HasColor(ecols[0]) {
		t.Fatal("re-home did not move the color's timers back")
	}
	if home.wheel.Len() != 2 || thief.wheel.Len() != 1 {
		t.Fatalf("re-home left %d/%d, want 2/1", home.wheel.Len(), thief.wheel.Len())
	}
	// Stats gauge reflects armed entries across wheels.
	if got := r.Stats().Total().TimersPending; got != 3 {
		t.Fatalf("TimersPending = %d, want 3", got)
	}
}

// TestTimersAcrossReHome exercises the full lease cycle end to end:
// a color is stolen away, drains on the thief, and a later post
// re-homes it — while it still has an armed timer, which must follow
// the lease and fire exactly once.
func TestTimersAcrossReHome(t *testing.T) {
	r := startRuntime(t, Config{Cores: 2, Policy: PolicyMelyWS, TimerTick: time.Millisecond})
	release := make(chan struct{})
	hBlock := r.Register("block", func(ctx *Ctx) { <-release })
	hWork := r.Register("work", func(ctx *Ctx) { time.Sleep(200 * time.Microsecond) },
		WithCostEstimate(5*time.Millisecond))
	var fired atomic.Int64
	hTimer := r.Register("timer", func(ctx *Ctx) { fired.Add(1) })

	cols := colorsOn(r, 0, 2)
	blocker, migrant := cols[0], cols[1]
	if err := r.Post(hBlock, blocker, nil); err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 30; j++ {
		if err := r.Post(hWork, migrant, j); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := r.PostAfter(hTimer, migrant, 150*time.Millisecond, nil); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, "the migrant color to be stolen", func() bool {
		return r.table.Owner(equeue.Color(migrant)) == 1
	})
	// Let the thief drain the color, then post again: the delivery sees
	// the expired lease and re-homes color and timer together.
	waitFor(t, 10*time.Second, "the migrant color to drain on the thief", func() bool {
		c := r.cores[1]
		c.lock.Lock()
		live := c.hasRunning && c.running == equeue.Color(migrant)
		c.lock.Unlock()
		return !live && r.table.Queue(equeue.Color(migrant)) == nil
	})
	if err := r.Post(hWork, migrant, 0); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, "the color to re-home", func() bool {
		return r.table.Owner(equeue.Color(migrant)) == 0
	})
	close(release)
	waitFor(t, 10*time.Second, "the re-homed timer to fire", func() bool {
		return fired.Load() == 1
	})
	drain(t, r)
	if fired.Load() != 1 {
		t.Fatalf("timer fired %d times across steal+re-home, want 1", fired.Load())
	}
}
