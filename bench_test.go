package mely

// One testing.B benchmark per table and figure of the paper, each
// regenerating its experiment on the simulated platform and reporting
// the headline metric via b.ReportMetric. Run specific ones with e.g.
//
//	go test -bench=Table3 -benchmem
//
// The full tables (with the paper's reference values alongside) come
// from cmd/melybench; these benches are the `go test` entry points the
// repository's structure requires, plus real-runtime microbenchmarks
// (post/execute throughput and steal latency) at the end.

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"github.com/melyruntime/mely/internal/equeue"
	"github.com/melyruntime/mely/internal/metrics"
	"github.com/melyruntime/mely/internal/policy"
	"github.com/melyruntime/mely/internal/sfsmodel"
	"github.com/melyruntime/mely/internal/sim"
	"github.com/melyruntime/mely/internal/swsmodel"
	"github.com/melyruntime/mely/internal/topology"
	"github.com/melyruntime/mely/internal/workload"
)

// simBench runs fn once per b.N iteration batch; the DES is
// deterministic, so one run per metric suffices and b.N loops re-run it.
func simBench(b *testing.B, fn func() map[string]float64) {
	b.Helper()
	var out map[string]float64
	for i := 0; i < b.N; i++ {
		out = fn()
	}
	for name, v := range out {
		b.ReportMetric(v, name)
	}
	b.ReportMetric(0, "ns/op") // wall time is host-dependent; metrics above matter
}

func buildUnbalanced(b *testing.B, pol policy.Config) *sim.Engine {
	b.Helper()
	eng, err := workload.BuildUnbalanced(topology.IntelXeonE5410(), pol, sim.DefaultParams(), 42,
		workload.UnbalancedSpec{EventsPerRound: 10_000})
	if err != nil {
		b.Fatal(err)
	}
	return eng
}

// BenchmarkTable1StealVsStolen regenerates Table I.
func BenchmarkTable1StealVsStolen(b *testing.B) {
	simBench(b, func() map[string]float64 {
		sfsEng, err := sfsmodel.Build(topology.IntelXeonE5410(), policy.LibasyncWS(), sim.DefaultParams(), 42, sfsmodel.Spec{})
		if err != nil {
			b.Fatal(err)
		}
		sfsRun := sim.Measure(sfsEng, 1, 200_000_000)
		swsEng, err := swsmodel.Build(topology.IntelXeonE5410(), policy.LibasyncWS(), sim.DefaultParams(), 42, swsmodel.Spec{Clients: 2000})
		if err != nil {
			b.Fatal(err)
		}
		swsRun := sim.Measure(swsEng, 50_000_000, 100_000_000)
		return map[string]float64{
			"sfs-steal-cycles":  sfsRun.StealCostCycles(),
			"sfs-stolen-cycles": sfsRun.StolenTimeCycles(),
			"web-steal-cycles":  swsRun.StealCostCycles(),
			"web-stolen-cycles": swsRun.StolenTimeCycles(),
		}
	})
}

// BenchmarkTable2MemoryLatency reports the modeled Table II parameters;
// run cmd/memlat for the host's real numbers.
func BenchmarkTable2MemoryLatency(b *testing.B) {
	simBench(b, func() map[string]float64 {
		c := sim.DefaultParams().Cache
		return map[string]float64{
			"L1-cycles":  float64(c.L1Cycles),
			"L2-cycles":  float64(c.L2Cycles),
			"mem-cycles": float64(c.MemCycles),
		}
	})
}

func benchUnbalanced(b *testing.B, pol policy.Config) {
	simBench(b, func() map[string]float64 {
		eng := buildUnbalanced(b, pol)
		run := sim.Measure(eng, 10_000_000, 100_000_000)
		return map[string]float64{
			"KEvents/s":     run.KEventsPerSecond(),
			"locking-%":     run.LockingTimePercent(),
			"steal-cycles":  run.StealCostCycles(),
			"stolen-cycles": run.StolenTimeCycles(),
		}
	})
}

// BenchmarkTable3BaseWS regenerates Table III (one sub-bench per row).
func BenchmarkTable3BaseWS(b *testing.B) {
	for _, pol := range []policy.Config{
		policy.Libasync(), policy.LibasyncWS(), policy.Mely(), policy.MelyBaseWS(),
	} {
		b.Run(pol.String(), func(b *testing.B) { benchUnbalanced(b, pol) })
	}
}

// BenchmarkTable4TimeLeft regenerates Table IV.
func BenchmarkTable4TimeLeft(b *testing.B) {
	for _, pol := range []policy.Config{policy.MelyBaseWS(), policy.MelyTimeLeftWS()} {
		b.Run(pol.String(), func(b *testing.B) { benchUnbalanced(b, pol) })
	}
}

// BenchmarkTable5PenaltyAware regenerates Table V.
func BenchmarkTable5PenaltyAware(b *testing.B) {
	for _, pol := range []policy.Config{
		policy.Libasync(), policy.LibasyncWS(), policy.MelyBaseWS(), policy.MelyPenaltyWS(),
	} {
		b.Run(pol.String(), func(b *testing.B) {
			simBench(b, func() map[string]float64 {
				eng, err := workload.BuildPenalty(topology.IntelXeonE5410(), pol, sim.DefaultParams(), 42,
					workload.PenaltySpec{NumA: 128})
				if err != nil {
					b.Fatal(err)
				}
				run := sim.Measure(eng, 20_000_000, 100_000_000)
				return map[string]float64{
					"KEvents/s":     run.KEventsPerSecond(),
					"misses/event":  run.L2MissesPerEvent(),
					"remote-steals": float64(run.Total().RemoteSteals),
				}
			})
		})
	}
}

// BenchmarkTable6LocalityAware regenerates Table VI.
func BenchmarkTable6LocalityAware(b *testing.B) {
	for _, pol := range []policy.Config{
		policy.Libasync(), policy.LibasyncWS(), policy.MelyBaseWS(), policy.MelyLocalityWS(),
	} {
		b.Run(pol.String(), func(b *testing.B) {
			simBench(b, func() map[string]float64 {
				eng, err := workload.BuildCacheEfficient(topology.IntelXeonE5410(), pol, sim.DefaultParams(), 42,
					workload.CacheEfficientSpec{APerCore: 50})
				if err != nil {
					b.Fatal(err)
				}
				run := sim.Measure(eng, 20_000_000, 100_000_000)
				return map[string]float64{
					"KEvents/s":    run.KEventsPerSecond(),
					"misses/event": run.L2MissesPerEvent(),
				}
			})
		})
	}
}

func benchSFS(b *testing.B, pol policy.Config) {
	simBench(b, func() map[string]float64 {
		eng, err := sfsmodel.Build(topology.IntelXeonE5410(), pol, sim.DefaultParams(), 42, sfsmodel.Spec{})
		if err != nil {
			b.Fatal(err)
		}
		run := sim.Measure(eng, 100_000_000, 300_000_000)
		return map[string]float64{"MB/s": sfsmodel.MBPerSecond(run)}
	})
}

// BenchmarkFig3SFSLibasync regenerates Figure 3.
func BenchmarkFig3SFSLibasync(b *testing.B) {
	for _, pol := range []policy.Config{policy.Libasync(), policy.LibasyncWS()} {
		b.Run(pol.String(), func(b *testing.B) { benchSFS(b, pol) })
	}
}

// BenchmarkFig8SFSAll regenerates Figure 8.
func BenchmarkFig8SFSAll(b *testing.B) {
	for _, pol := range []policy.Config{policy.Libasync(), policy.LibasyncWS(), policy.MelyWS()} {
		b.Run(pol.String(), func(b *testing.B) { benchSFS(b, pol) })
	}
}

func benchSWS(b *testing.B, pol policy.Config, clients int, ncopy bool) {
	simBench(b, func() map[string]float64 {
		eng, err := swsmodel.Build(topology.IntelXeonE5410(), pol, sim.DefaultParams(), 42,
			swsmodel.Spec{Clients: clients, NCopy: ncopy})
		if err != nil {
			b.Fatal(err)
		}
		run := sim.Measure(eng, 50_000_000, 150_000_000)
		return map[string]float64{"KReq/s": swsmodel.KRequestsPerSecond(run)}
	})
}

// BenchmarkFig4SWSLibasync regenerates Figure 4 (three sweep points).
func BenchmarkFig4SWSLibasync(b *testing.B) {
	for _, n := range []int{400, 1200, 2000} {
		for _, pol := range []policy.Config{policy.Libasync(), policy.LibasyncWS()} {
			b.Run(fmt.Sprintf("%s/clients=%d", pol, n), func(b *testing.B) {
				benchSWS(b, pol, n, false)
			})
		}
	}
}

// BenchmarkFig7SWSAll regenerates Figure 7 at the plateau.
func BenchmarkFig7SWSAll(b *testing.B) {
	const n = 2000
	b.Run("mely-WS", func(b *testing.B) { benchSWS(b, policy.MelyWS(), n, false) })
	b.Run("ncopy", func(b *testing.B) { benchSWS(b, policy.Mely(), n, true) })
	b.Run("libasync", func(b *testing.B) { benchSWS(b, policy.Libasync(), n, false) })
	b.Run("libasync-WS", func(b *testing.B) { benchSWS(b, policy.LibasyncWS(), n, false) })
	b.Run("mely-noWS", func(b *testing.B) { benchSWS(b, policy.Mely(), n, false) })
}

// ---- Real-runtime microbenchmarks ----

// BenchmarkRuntimePostExecute measures the real runtime's end-to-end
// post+execute cost for tiny handlers (queue overhead dominates).
func BenchmarkRuntimePostExecute(b *testing.B) {
	for _, pol := range []Policy{PolicyMelyWS, PolicyLibasync} {
		b.Run(pol.String(), func(b *testing.B) {
			r, err := New(Config{Cores: 2, Policy: pol})
			if err != nil {
				b.Fatal(err)
			}
			if err := r.Start(); err != nil {
				b.Fatal(err)
			}
			defer r.Stop()
			var done atomic.Int64
			h := r.Register("noop", func(ctx *Ctx) { done.Add(1) })
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := r.Post(h, Color(i%64+1), nil); err != nil {
					b.Fatal(err)
				}
			}
			for done.Load() < int64(b.N) {
			}
		})
	}
}

// BenchmarkRuntimePostBatch compares per-event Post against PostBatch
// at the v1 acceptance point: 64-event batches on an 8-core runtime.
// Each iteration posts one burst and then drains it outside the timed
// posting window, so "post-ns/event" isolates the producer-side
// delivery cost (on a shared-CPU host, wall-clock end-to-end numbers
// mostly measure the handlers, not the delivery path this API
// amortizes). The batched path must sustain at least 1.5x the posted/s
// of the per-event loop.
func BenchmarkRuntimePostBatch(b *testing.B) {
	const batchSize = 64
	run := func(b *testing.B, batched bool) {
		r, err := New(Config{Cores: 8})
		if err != nil {
			b.Fatal(err)
		}
		if err := r.Start(); err != nil {
			b.Fatal(err)
		}
		defer r.Close()
		var done atomic.Int64
		h := r.Register("noop", func(ctx *Ctx) { done.Add(1) })
		batch := make([]BatchEvent, batchSize)
		for i := range batch {
			batch[i] = BatchEvent{Handler: h, Color: Color(i + 1)}
		}
		var postNanos int64
		total := int64(0)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			t0 := time.Now()
			if batched {
				if err := r.PostBatch(batch); err != nil {
					b.Fatal(err)
				}
			} else {
				for _, be := range batch {
					if err := r.Post(be.Handler, be.Color, be.Data); err != nil {
						b.Fatal(err)
					}
				}
			}
			postNanos += time.Since(t0).Nanoseconds()
			total += batchSize
			for done.Load() < total {
				runtime.Gosched() // drain between bursts (untimed)
			}
		}
		b.ReportMetric(float64(total)/(float64(postNanos)/1e9), "posted/s")
		b.ReportMetric(float64(postNanos)/float64(total), "post-ns/event")
	}
	b.Run("post", func(b *testing.B) { run(b, false) })
	b.Run("batch64", func(b *testing.B) { run(b, true) })
}

// BenchmarkUnbalancedSteal measures the real runtime's steal-path
// throughput on an engineered imbalance at 8 cores: every color hashes
// to core 0 (probed via the table's placement, since v1 colors spread
// by mix hash), so all work lands on one worker and the other seven
// drain it exclusively by stealing. Each iteration posts one wave and
// waits for quiescence; colors re-home once drained, so every wave
// re-creates the imbalance — the paper's "Web server keeps stealing
// forever" shape. Sub-benchmarks compare the paper's single-color
// protocol (MaxStealColors=1) against batched stealing (the default):
// the batch path must sustain at least 1.2x the single-color
// steal-path throughput (the CI smoke run only checks it executes;
// compare events/s across the two sub-benchmarks on a quiet host).
func BenchmarkUnbalancedSteal(b *testing.B) {
	const (
		nColors        = 64
		eventsPerColor = 4
	)
	run := func(b *testing.B, maxStealColors int) {
		r, err := New(Config{Cores: 8, MaxStealColors: maxStealColors})
		if err != nil {
			b.Fatal(err)
		}
		if err := r.Start(); err != nil {
			b.Fatal(err)
		}
		defer r.Close()
		var done atomic.Int64
		var sink atomic.Int64
		h := r.Register("spin", func(ctx *Ctx) {
			n := int64(0)
			for i := 0; i < 200; i++ { // ~handler-sized work, no allocation
				n += int64(i)
			}
			sink.Add(n)
			done.Add(1)
		})
		// Colors that all hash to core 0: the steal pressure generator.
		colors := make([]Color, 0, nColors)
		for c := Color(1); len(colors) < nColors; c++ {
			if r.table.Hash(equeue.Color(c)) == 0 {
				colors = append(colors, c)
			}
		}
		wave := make([]BatchEvent, 0, nColors*eventsPerColor)
		for k := 0; k < eventsPerColor; k++ {
			for _, c := range colors {
				wave = append(wave, BatchEvent{Handler: h, Color: c})
			}
		}
		var total int64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := r.PostBatch(wave); err != nil {
				b.Fatal(err)
			}
			total += int64(len(wave))
			for done.Load() < total {
				runtime.Gosched()
			}
		}
		b.StopTimer()
		st := r.Stats().Total()
		b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "events/s")
		if st.Steals > 0 {
			b.ReportMetric(st.MeanStealBatch(), "colors/steal")
			b.ReportMetric(float64(st.Steals), "steals")
		}
	}
	b.Run("single", func(b *testing.B) { run(b, 1) })
	b.Run("batch", func(b *testing.B) { run(b, 0) })
}

// BenchmarkRuntimeColorPingPong measures serialized same-color chains
// (the color-queue churn path the paper prices in section V-C1).
func BenchmarkRuntimeColorPingPong(b *testing.B) {
	r, err := New(Config{Cores: 2, Policy: PolicyMelyWS})
	if err != nil {
		b.Fatal(err)
	}
	if err := r.Start(); err != nil {
		b.Fatal(err)
	}
	defer r.Stop()
	done := make(chan struct{})
	var h Handler
	h = r.Register("chain", func(ctx *Ctx) {
		n := ctx.Data().(int)
		if n == 0 {
			close(done)
			return
		}
		_ = ctx.Post(h, ctx.Color(), n-1)
	})
	b.ResetTimer()
	if err := r.Post(h, 9, b.N); err != nil {
		b.Fatal(err)
	}
	<-done
}

// metricsSink prevents dead-code elimination in simBench closures.
var metricsSink *metrics.Run

// BenchmarkRuntimeTimers is the end-to-end timer path: arm a burst of
// one-shot timers with near-term deadlines and wait for every expiry
// handler to run — wheel insert, worker harvest, lease delivery, and
// execution. The arm-only rate is reported separately by
// BenchmarkTimerWheelArmCancel in internal/timerwheel.
func BenchmarkRuntimeTimers(b *testing.B) {
	r, err := New(Config{Cores: 2, TimerTick: time.Millisecond})
	if err != nil {
		b.Fatal(err)
	}
	if err := r.Start(); err != nil {
		b.Fatal(err)
	}
	defer r.Stop()
	var done atomic.Int64
	h := r.Register("expire", func(ctx *Ctx) { done.Add(1) })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.PostAfter(h, Color(i%256+1), time.Duration(i%4)*time.Millisecond, nil); err != nil {
			b.Fatal(err)
		}
	}
	for done.Load() < int64(b.N) {
		time.Sleep(100 * time.Microsecond)
	}
}
