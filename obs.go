package mely

import (
	"io"
	goruntime "runtime"
	"sort"
	"strconv"
	"time"

	"github.com/melyruntime/mely/internal/equeue"
	"github.com/melyruntime/mely/internal/obs"
	"github.com/melyruntime/mely/internal/spinlock"
)

// This file is the live-observability bridge: the sampled latency
// instrumentation fed from the hot path (observeExec), the per-color
// delay attribution, the flight-recorder plumbing (traceAux,
// TracePollWakeup, DumpTrace), and the Prometheus text exposition
// (WriteMetrics). The primitives live in internal/obs; servers mount
// them over HTTP with obs.NewMux:
//
//	mux := obs.NewMux(obs.MuxConfig{Metrics: rt.WriteMetrics, Trace: rt.DumpTrace})
//	go http.Serve(listener, mux)

// colorDelayEntry is one tracked color's sampled-delay attribution.
// samples == 0 marks a free slot (color 0 is a valid color).
type colorDelayEntry struct {
	color   Color
	samples int64
	delay   int64
}

// colorDelayTable attributes sampled queue delay to a core's hottest
// colors: a fixed ColorTopK-entry table with Misra-Gries-style
// eviction (a sample of an untracked color decrements the smallest
// entry; the slot turns over once it empties). Hot colors survive the
// churn, so the attribution is exact for a stable hot set and
// conservative (undercounted) for the tail. Writers are the core's own
// worker on sampled events only; Stats snapshots concurrently, so the
// table carries its own spinlock rather than relying on c.lock.
type colorDelayTable struct {
	mu      spinlock.Lock
	entries [ColorTopK]colorDelayEntry
}

// note records one sampled queue delay for color.
func (t *colorDelayTable) note(color Color, delayNanos int64) {
	t.mu.Lock()
	minIdx, freeIdx := -1, -1
	for i := range t.entries {
		e := &t.entries[i]
		if e.samples == 0 {
			if freeIdx < 0 {
				freeIdx = i
			}
			continue
		}
		if e.color == color {
			e.samples++
			e.delay += delayNanos
			t.mu.Unlock()
			return
		}
		if minIdx < 0 || e.samples < t.entries[minIdx].samples {
			minIdx = i
		}
	}
	if freeIdx >= 0 {
		t.entries[freeIdx] = colorDelayEntry{color: color, samples: 1, delay: delayNanos}
		t.mu.Unlock()
		return
	}
	// Full: decay the smallest entry; claim its slot once it empties.
	e := &t.entries[minIdx]
	e.samples--
	if e.samples == 0 {
		*e = colorDelayEntry{color: color, samples: 1, delay: delayNanos}
	}
	t.mu.Unlock()
}

// snapshot copies the live entries, most-sampled first.
func (t *colorDelayTable) snapshot() []ColorDelay {
	t.mu.Lock()
	entries := t.entries
	t.mu.Unlock()
	var out []ColorDelay
	for i := range entries {
		if entries[i].samples > 0 {
			out = append(out, ColorDelay{
				Color:   entries[i].color,
				Samples: entries[i].samples,
				Delay:   time.Duration(entries[i].delay),
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Samples != out[j].Samples {
			return out[i].Samples > out[j].Samples
		}
		return out[i].Color < out[j].Color
	})
	return out
}

// observeExec is the execution-side half of the latency sampling and
// the flight recorder's exec record. Called by execute only when the
// event is sampled or the recorder is on; start is the execution start
// already measured for the profiler, so the instrumentation adds no
// clock reads.
func (r *Runtime) observeExec(c *rcore, ev *equeue.Event, start time.Time, elapsed int64) {
	startRel := start.Sub(r.epoch).Nanoseconds()
	if post := ev.PostNanos; post != 0 {
		d := startRel - post
		if d < 0 {
			d = 0
		}
		c.stats.qdelayHist.Observe(d)
		c.stats.execTimeHist.Observe(elapsed)
		c.colorDelays.note(Color(ev.Color), d)
	}
	if c.ring != nil {
		n := uint32(ev.Handler)
		if ev.Stolen {
			n |= obs.StolenFlag
		}
		// The exec record carries the causal ids: chains are
		// reconstructed from exec records alone (posts are sampled),
		// so this is the one per-event flow cost — three atomic stores.
		c.ring.AppendFlow(obs.KindExec, startRel, elapsed, uint64(ev.Color), n,
			ev.TraceID, ev.SpanID, ev.ParentSpan)
	}
}

// traceAux appends one record to the shared auxiliary flight-recorder
// track (spill, reload — actions not attributable to one worker).
func (r *Runtime) traceAux(k obs.Kind, dur int64, arg uint64, n uint32) {
	if r.ringAux != nil {
		r.ringAux.Append(k, r.now(), dur, arg, n)
	}
}

// traceAuxFlow is traceAux carrying causal ids (spill records: the
// spilled event's lineage rides to disk and back, and the record lets
// the renderer show where in a chain the disk round-trip happened).
func (r *Runtime) traceAuxFlow(k obs.Kind, dur int64, arg uint64, n uint32, trace, span, parent uint64) {
	if r.ringAux != nil {
		r.ringAux.AppendFlow(k, r.now(), dur, arg, n, trace, span, parent)
	}
}

// TracePollWakeup records a poller-shard wakeup that harvested the
// given number of readiness events on the flight recorder's auxiliary
// track. Called by readiness backends (internal/netpoll); a no-op when
// the recorder is off.
func (r *Runtime) TracePollWakeup(events int) {
	if r.ringAux != nil {
		r.ringAux.Append(obs.KindPollWake, r.now(), 0, 0, uint32(clampUint32(int64(events))))
	}
}

func clampUint32(v int64) int64 {
	if v < 0 {
		return 0
	}
	if v > int64(^uint32(0)) {
		return int64(^uint32(0))
	}
	return v
}

// DumpTrace renders the flight recorder — every core's ring plus the
// auxiliary track — as a Chrome trace-event JSON array (the format
// internal/trace emits for simulator runs): open the dump in Perfetto
// or chrome://tracing to see executions, steal batches, lease
// re-homes, spills, reloads, timer firings, and poll wakeups on a
// per-core timeline. Cheap and safe while the runtime runs; records
// overwritten mid-dump are dropped. With Config.TraceRing negative the
// dump is an empty array.
func (r *Runtime) DumpTrace(w io.Writer) error {
	rings := make([]*obs.Ring, len(r.cores))
	for i, c := range r.cores {
		rings[i] = c.ring
	}
	hs := *r.handlers.Load()
	cfg := obs.ChromeConfig{HandlerName: func(id uint32) string {
		if int(id) < len(hs) {
			return hs[id].name
		}
		return ""
	}}
	return obs.WriteChrome(w, rings, r.ringAux, cfg)
}

// stallStackBytes bounds the goroutine dump captured per stall episode.
const stallStackBytes = 1 << 18

// stallWatchdog is the Config.StallThreshold sampler: a goroutine that
// periodically (threshold/4, floored at 10ms) compares each core's
// last-progress stamp against the clock. A handler executing past the
// threshold is reported once per episode — a KindStall record on the
// auxiliary track carrying the stalled span's ids, a full goroutine
// dump (LastStallStack), the per-core stall counter — and the
// mely_stalled_cores gauge tracks how many cores are currently stuck.
// Started by Start, stopped by Stop; runs only when stallOn.
func (r *Runtime) stallWatchdog() {
	defer r.wg.Done()
	threshold := r.cfg.StallThreshold.Nanoseconds()
	tick := r.cfg.StallThreshold / 4
	if tick < 10*time.Millisecond {
		tick = 10 * time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-r.stallStop:
			r.stalledCores.Store(0)
			return
		case <-t.C:
		}
		now := r.now()
		stalled := int32(0)
		for _, c := range r.cores {
			st := c.execStart.Load()
			if st != 0 && now-st >= threshold {
				stalled++
			}
		}
		// Publish the gauge before reporting episodes: noteStall can
		// trigger an incident capture whose fresh health sample must
		// already see the stuck cores.
		r.stalledCores.Store(stalled)
		for _, c := range r.cores {
			st := c.execStart.Load()
			if st == 0 || now-st < threshold {
				continue
			}
			if c.stalled.Swap(true) {
				continue // this episode was already reported
			}
			r.noteStall(c, now, now-st)
		}
	}
}

// noteStall records one fresh stall episode on core c.
func (r *Runtime) noteStall(c *rcore, now, elapsed int64) {
	c.stats.stalls.Add(1)
	if r.ringAux != nil {
		r.ringAux.AppendFlow(obs.KindStall, now, elapsed, uint64(c.id),
			uint32(c.execHandler.Load()), c.execTrace.Load(), c.execSpan.Load(), 0)
	}
	buf := make([]byte, stallStackBytes)
	buf = buf[:goruntime.Stack(buf, true)]
	r.stallMu.Lock()
	r.lastStallStack = buf
	r.stallMu.Unlock()
	if p := r.cfg.StallDumpPath; p != "" {
		// Automatic flight-recorder dump: the trace context around the
		// stall survives even if the operator has to kill the process.
		_ = obs.DumpToFile(p, r.DumpTrace)
	}
	if r.cfg.IncidentDir != "" {
		// Profile-on-anomaly unification: a stall episode captures the
		// same evidence bundle the health engine's detectors do, under
		// the same rate limit.
		r.captureIncidentAsync("stall", nil)
	}
}

// LastStallStack returns the full goroutine dump captured at the most
// recent stall episode, or nil when the watchdog has never fired. The
// returned bytes are the watchdog's own buffer; treat them as
// read-only.
func (r *Runtime) LastStallStack() []byte {
	r.stallMu.Lock()
	defer r.stallMu.Unlock()
	return r.lastStallStack
}

// Latency-histogram bucket bounds in seconds, shared by every
// mely_*_seconds histogram rendered from a LatencySnapshot.
func latencyUppersSeconds() []float64 {
	uppers := make([]float64, LatencyBuckets-1)
	for i := range uppers {
		uppers[i] = float64(obs.LatencyUpperNanos(i)) / 1e9
	}
	return uppers
}

// WriteMetrics renders the full Stats snapshot in the Prometheus text
// exposition format (version 0.0.4): every counter, gauge, and
// histogram of Stats/CoreStats as a typed mely_* series, per-core
// series labeled core="i". See docs/observability.md for the
// inventory. Serve it over HTTP with obs.NewMux, which also caches the
// rendered payload briefly so aggressive scrapers share one snapshot.
func (r *Runtime) WriteMetrics(w io.Writer) error {
	s := r.Stats()
	m := obs.NewMetricsWriter(w)

	coreLabel := func(i int) string { return `core="` + strconv.Itoa(i) + `"` }

	counter := func(name, help string, get func(CoreStats) float64) {
		m.Family(name, "counter", help)
		for i, c := range s.Cores {
			m.Sample(name, coreLabel(i), get(c))
		}
	}
	counter("mely_events_total", "Events executed, per core.",
		func(c CoreStats) float64 { return float64(c.Events) })
	counter("mely_exec_seconds_total", "Total handler execution time, per core.",
		func(c CoreStats) float64 { return c.ExecTime.Seconds() })
	counter("mely_steals_total", "Successful steals performed by this core.",
		func(c CoreStats) float64 { return float64(c.Steals) })
	counter("mely_remote_steals_total", "Steals that crossed a cache boundary.",
		func(c CoreStats) float64 { return float64(c.RemoteSteals) })
	counter("mely_steal_attempts_total", "Steal probes, including failures.",
		func(c CoreStats) float64 { return float64(c.StealAttempts) })
	counter("mely_failed_steals_total", "Steal probes that found nothing.",
		func(c CoreStats) float64 { return float64(c.FailedSteals) })
	counter("mely_steal_seconds_total", "Time spent in successful steal transactions.",
		func(c CoreStats) float64 { return c.StealTime.Seconds() })
	counter("mely_stolen_events_total", "Migrated events executed on this core.",
		func(c CoreStats) float64 { return float64(c.StolenEvents) })
	counter("mely_stolen_seconds_total", "Handler time of migrated events (stolen time).",
		func(c CoreStats) float64 { return c.StolenTime.Seconds() })
	counter("mely_stolen_colors_total", "Colors migrated here by this core's steals.",
		func(c CoreStats) float64 { return float64(c.StolenColors) })
	counter("mely_parks_total", "Idle worker sleeps.",
		func(c CoreStats) float64 { return float64(c.Parks) })
	counter("mely_backoff_parks_total", "Parks shortened by the steal-throttling backoff.",
		func(c CoreStats) float64 { return float64(c.BackoffParks) })
	counter("mely_posted_here_total", "Enqueues landing on this core.",
		func(c CoreStats) float64 { return float64(c.PostedHere) })
	counter("mely_batched_events_total", "Events delivered through PostBatch core groups.",
		func(c CoreStats) float64 { return float64(c.BatchedEvents) })
	counter("mely_color_queue_churns_total", "ColorQueue link/unlink pairs.",
		func(c CoreStats) float64 { return float64(c.ColorQueueChurns) })
	counter("mely_panics_total", "Handler panics contained by the worker.",
		func(c CoreStats) float64 { return float64(c.Panics) })
	counter("mely_timers_fired_total", "Timers expired by this core's wheel.",
		func(c CoreStats) float64 { return float64(c.TimersFired) })
	counter("mely_stalls_total", "Stall-watchdog episodes (handler exceeded StallThreshold).",
		func(c CoreStats) float64 { return float64(c.Stalls) })

	m.Family("mely_queue_length", "gauge", "Instantaneous per-core queue length.")
	for i, c := range s.Cores {
		m.Sample("mely_queue_length", coreLabel(i), float64(c.Queued))
	}
	m.Family("mely_timers_pending", "gauge", "Armed timers on this core's wheel.")
	for i, c := range s.Cores {
		m.Sample("mely_timers_pending", coreLabel(i), float64(c.TimersPending))
	}

	// Steal batch size: a per-core histogram over colors-per-steal. The
	// sum is exact (StolenColors), the count is Steals.
	m.Family("mely_steal_batch_colors", "histogram",
		"Colors migrated per successful steal, per core.")
	stealUppers := []float64{1, 2, 4, 8, 16}
	for i, c := range s.Cores {
		m.Histogram("mely_steal_batch_colors", coreLabel(i),
			stealUppers, c.StealBatchHist[:], float64(c.StolenColors))
	}

	// Timer firing lag: bucket counts only — the lag sum is not
	// tracked, so _sum is rendered as 0 (quantiles via buckets remain
	// exact at bucket resolution).
	m.Family("mely_timer_lag_seconds", "histogram",
		"Timer firing lag (harvest minus deadline), per core; _sum not tracked (0).")
	timerUppers := []float64{100e-6, 1e-3, 2e-3, 10e-3, 100e-3}
	for i, c := range s.Cores {
		m.Histogram("mely_timer_lag_seconds", coreLabel(i),
			timerUppers, c.TimerLagHist[:], 0)
	}

	// Sampled latency histograms (Config.ObsSampleRate).
	latUppers := latencyUppersSeconds()
	m.Family("mely_queue_delay_seconds", "histogram",
		"Sampled post-to-execution delay, per core (one in ObsSampleRate events).")
	for i, c := range s.Cores {
		m.Histogram("mely_queue_delay_seconds", coreLabel(i),
			latUppers, c.QueueDelayHist.Buckets[:], c.QueueDelayHist.Sum.Seconds())
	}
	m.Family("mely_exec_time_seconds", "histogram",
		"Sampled handler execution time, per core (one in ObsSampleRate events).")
	for i, c := range s.Cores {
		m.Histogram("mely_exec_time_seconds", coreLabel(i),
			latUppers, c.ExecTimeHist.Buckets[:], c.ExecTimeHist.Sum.Seconds())
	}

	// Per-color top-K delay attribution: gauges, not counters — table
	// membership churns with the hot set, so series come and go.
	m.Family("mely_color_delay_samples", "gauge",
		"Sampled events per tracked hot color (top-K attribution table).")
	for i, c := range s.Cores {
		for _, cd := range c.TopColorDelays {
			m.Sample("mely_color_delay_samples",
				coreLabel(i)+`,color="`+strconv.FormatUint(uint64(cd.Color), 10)+`"`,
				float64(cd.Samples))
		}
	}
	m.Family("mely_color_delay_mean_seconds", "gauge",
		"Mean sampled queue delay per tracked hot color.")
	for i, c := range s.Cores {
		for _, cd := range c.TopColorDelays {
			m.Sample("mely_color_delay_mean_seconds",
				coreLabel(i)+`,color="`+strconv.FormatUint(uint64(cd.Color), 10)+`"`,
				cd.Mean().Seconds())
		}
	}

	// Runtime-wide series.
	single := func(name, typ, help string, v float64) {
		m.Family(name, typ, help)
		m.Sample(name, "", v)
	}
	single("mely_steal_cost_estimate_seconds", "gauge",
		"Monitored cost of one steal (the time-left heuristic's threshold).",
		s.StealCostEstimate.Seconds())
	single("mely_pending_events", "gauge",
		"Posted-but-not-completed events.", float64(s.Pending))
	single("mely_stalled_cores", "gauge",
		"Cores currently stuck in a handler past StallThreshold (0 with the watchdog off).",
		float64(s.StalledCores))
	single("mely_timers_canceled_total", "counter",
		"Timer firings averted by Cancel.", float64(s.TimersCanceled))
	single("mely_poll_wakeups_total", "counter",
		"Poll wait returns across all readiness sources.", float64(s.PollWakeups))
	single("mely_poll_events_total", "counter",
		"Readiness events harvested across all sources.", float64(s.PollEvents))
	m.Family("mely_poll_batch_events", "histogram",
		"Readiness events harvested per poll wakeup.")
	m.Histogram("mely_poll_batch_events", "",
		[]float64{1, 4, 16, 64, 256}, s.PollBatchHist[:], float64(s.PollEvents))
	single("mely_write_stalls_total", "counter",
		"Writes queued on kernel backpressure.", float64(s.WriteStalls))
	single("mely_read_pauses_total", "counter",
		"Read pauses on saturated data colors.", float64(s.ReadPauses))
	single("mely_queued_events", "gauge",
		"In-memory queued events, runtime-wide.", float64(s.QueuedEvents))
	single("mely_spilled_events_total", "counter",
		"Events appended to the spill store.", float64(s.SpilledEvents))
	single("mely_spilled_bytes_total", "counter",
		"Bytes appended to the spill store (record headers + payloads).",
		float64(s.SpilledBytes))
	single("mely_reloaded_events_total", "counter",
		"Events reloaded from the spill store.", float64(s.ReloadedEvents))
	single("mely_spilled_now", "gauge",
		"Events currently on disk.", float64(s.SpilledNow))
	single("mely_rejected_posts_total", "counter",
		"Posts failed with ErrOverloaded.", float64(s.RejectedPosts))
	single("mely_blocked_posts_total", "counter",
		"Posts that waited under OverloadBlock.", float64(s.BlockedPosts))
	single("mely_spill_errors_total", "counter",
		"Spill fallbacks (unencodable payload or disk failure).", float64(s.SpillErrors))
	m.Family("mely_spill_depth_records", "histogram",
		"Per-color disk depth observed at each spill append; _sum not tracked (0).")
	m.Histogram("mely_spill_depth_records", "",
		[]float64{16, 64, 256, 1024, 4096}, s.SpillDepthHist[:], 0)
	single("mely_spill_syncs_total", "counter",
		"msync/fsync durability points issued by the spill store.", float64(s.SpillSyncs))
	single("mely_recovered_events_total", "counter",
		"Spilled events recovered from surviving segments at startup.", float64(s.RecoveredEvents))
	single("mely_torn_records_total", "counter",
		"Torn segment tails truncated during recovery.", float64(s.TornRecords))

	// Time-series and health series, rendered only when the collector
	// is armed (Config.ObsInterval > 0) so a process either always or
	// never exposes them — scrapers see a stable series set.
	if col := r.collector; col != nil {
		rates := col.ring.LastRates()
		single("mely_events_rate", "gauge",
			"Events executed per second over the last collector window.",
			rates.EventsPerSec)
		single("mely_posts_rate", "gauge",
			"Events posted per second over the last collector window.",
			rates.PostsPerSec)
		single("mely_steals_rate", "gauge",
			"Successful steals per second over the last collector window.",
			rates.StealsPerSec)
		single("mely_spill_events_rate", "gauge",
			"Events spilled to disk per second over the last collector window.",
			rates.SpillEventsPerSec)
		single("mely_spill_bytes_rate", "gauge",
			"Bytes spilled to disk per second over the last collector window.",
			rates.SpillBytesPerSec)
		single("mely_queue_delay_window_p99_seconds", "gauge",
			"Queue-delay p99 of the last collector window (sampled).",
			rates.QDelayP99.Seconds())
		rep := r.Health()
		hv := 0.0
		if rep.Healthy {
			hv = 1
		}
		single("mely_health_status", "gauge",
			"1 when no health detector is firing, 0 otherwise.", hv)
		single("mely_anomalies_total", "counter",
			"Fresh anomaly episodes detected by the health engine.",
			float64(rep.TotalAnomalies))
		single("mely_incidents_total", "counter",
			"Incident bundles captured by profile-on-anomaly.",
			float64(rep.Incidents))
		single("mely_recommended_max_queued", "gauge",
			"Recommended MaxQueuedEvents for Config.TargetQueueDelay (0 without a target; recommendation only).",
			float64(rep.RecommendedMaxQueued))
	}

	return m.Flush()
}
