//go:build race

package mely

// raceEnabled lets tests whose assertions are meaningless under the
// race detector (allocation accounting, timing floors) skip themselves.
const raceEnabled = true
